"""E1 — Differences between similarity measures (Table III, Fig. 7).

For randomly selected vertex pairs on the Net-like and PPI1-like datasets the
experiment computes

* **SimRank-I** — the paper's SimRank on the uncertain graph (Baseline),
* **SimRank-II** — SimRank on the graph with uncertainty removed,
* **SimRank-III** — Du et al.'s SimRank (``W(k) = (W(1))^k`` assumption),
* **Jaccard-I** — expected Jaccard similarity on the uncertain graph,
* **Jaccard-II** — Jaccard on the graph with uncertainty removed,

normalises every series to ``[0, 1]`` (as the paper does for Fig. 7) and
reports the average / maximum / minimum absolute bias of each measure against
SimRank-I (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.simrank_deterministic import deterministic_simrank_pair
from repro.baselines.simrank_du import du_simrank_pair
from repro.baselines.structural_context import deterministic_jaccard, expected_jaccard
from repro.core.baseline import baseline_simrank
from repro.core.walks import AlphaCache
from repro.datasets.registry import load_dataset
from repro.experiments.report import format_table
from repro.graph.generators import related_vertex_pairs
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.stats import BiasSummary, normalize_to_unit_interval, summarize_bias

#: The measure names in the order Table III reports them.
MEASURES = ("SimRank-I", "SimRank-II", "SimRank-III", "Jaccard-I", "Jaccard-II")


@dataclass
class MeasuresResult:
    """Similarity series and bias summaries for one dataset."""

    dataset: str
    pairs: List[Tuple[object, object]]
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    biases: Dict[str, BiasSummary] = field(default_factory=dict)


def run_measures_experiment(
    datasets: Sequence[str] = ("net", "ppi1"),
    num_pairs: int = 60,
    decay: float = 0.6,
    iterations: int = 4,
    seed: RandomState = 17,
) -> List[MeasuresResult]:
    """Run E1 on the given datasets and return per-dataset series and biases."""
    generator = ensure_rng(seed)
    results: List[MeasuresResult] = []
    for name in datasets:
        graph = load_dataset(name)
        pairs = related_vertex_pairs(graph, num_pairs, rng=generator)
        cache = AlphaCache(graph)

        simrank_uncertain = []
        simrank_deterministic = []
        simrank_du = []
        jaccard_uncertain = []
        jaccard_deterministic = []
        deterministic = graph.to_deterministic()
        for u, v in pairs:
            simrank_uncertain.append(
                baseline_simrank(
                    graph, u, v, decay=decay, iterations=iterations, alpha_cache=cache
                ).score
            )
            simrank_deterministic.append(
                deterministic_simrank_pair(
                    deterministic, u, v, decay=decay, iterations=iterations
                )
            )
            simrank_du.append(du_simrank_pair(graph, u, v, decay=decay, iterations=iterations))
            jaccard_uncertain.append(expected_jaccard(graph, u, v))
            jaccard_deterministic.append(deterministic_jaccard(graph, u, v))

        raw_series = {
            "SimRank-I": simrank_uncertain,
            "SimRank-II": simrank_deterministic,
            "SimRank-III": simrank_du,
            "Jaccard-I": jaccard_uncertain,
            "Jaccard-II": jaccard_deterministic,
        }
        # Sort pairs by decreasing SimRank-I, then normalise every series to
        # [0, 1] — exactly how Fig. 7 presents the curves.
        order = np.argsort(-np.asarray(simrank_uncertain))
        result = MeasuresResult(dataset=name, pairs=[pairs[i] for i in order])
        for measure, values in raw_series.items():
            ordered = np.asarray(values, dtype=float)[order]
            result.series[measure] = normalize_to_unit_interval(ordered)
        reference = result.series["SimRank-I"]
        for measure in MEASURES[1:]:
            result.biases[measure] = summarize_bias(reference, result.series[measure])
        results.append(result)
    return results


def format_measures_results(results: Sequence[MeasuresResult]) -> str:
    """Render the Table III analogue."""
    headers = ("dataset", "similarity", "avg. bias", "max. bias", "min. bias")
    rows = []
    for result in results:
        for measure in MEASURES[1:]:
            bias = result.biases[measure]
            rows.append((result.dataset, measure, bias.average, bias.maximum, bias.minimum))
    return format_table(headers, rows)
