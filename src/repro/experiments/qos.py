"""QoS experiment: overload isolation, shedding, and adaptive fidelity.

PR 8 gave the serving stack admission control (per-tenant ``max_qps`` /
``max_inflight`` / ``max_queue_depth`` quotas shedding over-quota requests
synchronously), graceful degradation (under dispatch-queue pressure,
sampled answers truncate to fewer walk shards and are flagged
``degraded``), and adaptive-fidelity ``accuracy=`` queries (the walk
bundle grows until the CI half-width meets the target).  This experiment
demonstrates all three on one deterministic two-tenant workload:

* **Overload isolation** — a *hot* tenant with quotas is driven far above
  its admitted rate while a *quiet* tenant runs a light stream.  Measured:
  the hot tenant's shed count (bounded queues: admitted work never piles
  up), and the quiet tenant's p95 latency with and without the hot tenant
  hammering the service — the headline number, because shedding at the
  door is what keeps the neighbours fast.
* **Graceful degradation** — the same burst against a no-quota service
  with degradation enabled: how many answers were degraded, and that each
  equals the full-fidelity answer at its truncated walk count.
* **Adaptive fidelity** — ``accuracy=`` sweeps over a few targets: walks
  used vs. achieved half-width, and whether the interval covers the
  high-fidelity reference estimate.

Run it from the CLI with ``python -m repro.experiments qos [--quick]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.report import format_table
from repro.graph.generators import rmat_uncertain
from repro.service.qos import OverloadedError
from repro.service.service import PairQuery, SimilarityService
from repro.utils.rng import ensure_rng


@dataclass
class IsolationRun:
    """Quiet-tenant latency with and without a hot tenant's overload."""

    scenario: str  #: "quiet alone" / "quiet + hot overload"
    quiet_queries: int
    quiet_p95_ms: float
    hot_submitted: int
    hot_admitted: int
    hot_shed: int


@dataclass
class DegradationRun:
    """One burst through a degradation-enabled service."""

    queries: int
    degraded: int
    walks_full: int
    walks_degraded: int
    bit_identical: bool  #: degraded answers equal truncated plain queries


@dataclass
class AdaptiveRun:
    """One ``accuracy=`` target's cost and achieved precision."""

    target: float
    walks_used: int
    ci_halfwidth: float
    converged: bool
    covers_reference: bool  #: CI contains the high-fidelity estimate


@dataclass
class QosResult:
    isolation: List[IsolationRun]
    degradation: DegradationRun
    adaptive: List[AdaptiveRun]


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _run_quiet_stream(
    service: SimilarityService, pairs, graph: str
) -> List[float]:
    latencies = []
    for u, v in pairs:
        started = time.perf_counter()
        service.pair(u, v, graph=graph)
        latencies.append(1000.0 * (time.perf_counter() - started))
    return latencies


def run_qos_experiment(
    num_vertices: int = 300,
    num_edges: int = 1200,
    num_walks: int = 512,
    quiet_queries: int = 30,
    hot_queries: int = 120,
    seed: int = 7,
) -> QosResult:
    """Overload a quota'd hot tenant; measure isolation, shed, degradation."""
    rng = ensure_rng(seed)
    graph = rmat_uncertain(
        num_vertices, num_edges, rng=rng, prob_low=0.2, prob_high=0.9
    )
    vertices = sorted(graph.vertices())

    def pick_pairs(count: int):
        return [
            (
                vertices[int(rng.integers(0, len(vertices)))],
                vertices[int(rng.integers(0, len(vertices)))],
            )
            for _ in range(count)
        ]

    quiet_pairs = pick_pairs(quiet_queries)
    hot_pairs = pick_pairs(hot_queries)

    # -- isolation: quiet tenant alone, then next to an overloaded hot one --
    isolation: List[IsolationRun] = []
    with SimilarityService(graph, num_walks=num_walks, seed=seed) as service:
        service.create_graph("quiet", graph.copy(), seed=seed + 1)
        alone = _run_quiet_stream(service, quiet_pairs, "quiet")
    isolation.append(
        IsolationRun(
            scenario="quiet alone",
            quiet_queries=len(alone),
            quiet_p95_ms=_percentile(alone, 0.95),
            hot_submitted=0,
            hot_admitted=0,
            hot_shed=0,
        )
    )

    with SimilarityService(
        graph,
        num_walks=num_walks,
        seed=seed,
        max_qps=20.0,
        max_inflight=8,
        max_queue_depth=16,
    ) as service:
        # Only the hot (default) tenant is quota'd; the quiet one is free.
        service.create_graph(
            "quiet",
            graph.copy(),
            seed=seed + 1,
            max_qps=None,
            max_inflight=None,
            max_queue_depth=None,
        )
        # Fire the hot burst without waiting on the answers (10x the quiet
        # rate); admission sheds what the quotas refuse.
        hot_futures = []
        for u, v in hot_pairs:
            try:
                hot_futures.append(
                    service.submit(PairQuery(u, v))
                )
            except OverloadedError:
                pass
        loaded = _run_quiet_stream(service, quiet_pairs, "quiet")
        for future in hot_futures:
            try:
                future.result()
            except Exception:
                pass
        admission = service.service_stats()["qos"]["admission"]["default"]
    isolation.append(
        IsolationRun(
            scenario="quiet + hot overload",
            quiet_queries=len(loaded),
            quiet_p95_ms=_percentile(loaded, 0.95),
            hot_submitted=len(hot_pairs),
            hot_admitted=admission["admitted"],
            hot_shed=admission["shed"],
        )
    )

    # -- degradation: the same burst, no quotas, degradation armed --
    # The truncation floor is one shard, so the bundle must span several
    # shards for degradation to have room to cut.
    shard_size = max(1, num_walks // 4)
    with SimilarityService(
        graph,
        num_walks=num_walks,
        seed=seed,
        shard_size=shard_size,
        degrade_queue_depth=4,
        max_batch_size=1,
        batch_wait_seconds=0.0,
    ) as service:
        futures = [service.submit(PairQuery(u, v)) for u, v in hot_pairs]
        answers = [future.result() for future in futures]
    degraded = [a for a in answers if a.details.get("degraded")]
    bit_identical = True
    if degraded:
        sample = degraded[0]
        with SimilarityService(
            graph, num_walks=num_walks, seed=seed, shard_size=shard_size
        ) as ref:
            plain = ref.pair(
                sample.u, sample.v, num_walks=sample.details["walks_used"]
            )
        bit_identical = plain.score == sample.score
    degradation = DegradationRun(
        queries=len(answers),
        degraded=len(degraded),
        walks_full=num_walks,
        walks_degraded=(
            degraded[0].details["walks_used"] if degraded else num_walks
        ),
        bit_identical=bit_identical,
    )

    # -- adaptive fidelity: targets vs. walks used and coverage --
    adaptive: List[AdaptiveRun] = []
    with SimilarityService(
        graph, num_walks=256, seed=seed, max_num_walks=8192
    ) as service:
        # Prefer a pair with genuinely uncertain similarity: a zero-score
        # pair has zero variance and converges trivially.
        u, v = quiet_pairs[0]
        reference = 0.0
        for candidate_u, candidate_v in quiet_pairs + hot_pairs:
            score = service.pair(candidate_u, candidate_v).score
            if score > 0.0:
                u, v, reference = candidate_u, candidate_v, score
                break
        reference = service.pair(u, v, num_walks=8192).score
        # Anchor the target sweep to the precision a minimal adaptive run
        # achieves, so successive targets genuinely force the bundle to
        # grow (half-width shrinks ~1/sqrt(walks): halving it needs 4x).
        probe = service.pair(u, v, accuracy=0.5).details["ci_halfwidth"]
        base_target = max(probe, 1e-6)
        for target in (
            2.0 * base_target,
            0.9 * base_target,
            0.45 * base_target,
            0.22 * base_target,
        ):
            result = service.pair(u, v, accuracy=target)
            details = result.details
            adaptive.append(
                AdaptiveRun(
                    target=target,
                    walks_used=details["walks_used"],
                    ci_halfwidth=details["ci_halfwidth"],
                    converged=details["converged"],
                    covers_reference=(
                        details["ci_low"] <= reference <= details["ci_high"]
                    ),
                )
            )

    return QosResult(
        isolation=isolation, degradation=degradation, adaptive=adaptive
    )


def format_qos_results(result: QosResult) -> str:
    lines = ["overload isolation (hot tenant quota'd, quiet tenant measured):"]
    lines.append(
        format_table(
            ("scenario", "quiet q", "quiet p95 ms", "hot sent", "hot admitted",
             "hot shed"),
            [
                (
                    run.scenario,
                    run.quiet_queries,
                    run.quiet_p95_ms,
                    run.hot_submitted,
                    run.hot_admitted,
                    run.hot_shed,
                )
                for run in result.isolation
            ],
            precision=2,
        )
    )
    lines.append("")
    lines.append("graceful degradation (no quotas, queue-pressure fallback):")
    d = result.degradation
    lines.append(
        format_table(
            ("queries", "degraded", "full walks", "degraded walks",
             "bit-identical"),
            [(d.queries, d.degraded, d.walks_full, d.walks_degraded,
              "yes" if d.bit_identical else "NO")],
            precision=2,
        )
    )
    lines.append("")
    lines.append("adaptive fidelity (accuracy= targets, one pair):")
    lines.append(
        format_table(
            ("target", "walks used", "ci half-width", "converged", "covers ref"),
            [
                (
                    run.target,
                    run.walks_used,
                    run.ci_halfwidth,
                    "yes" if run.converged else "no",
                    "yes" if run.covers_reference else "NO",
                )
                for run in result.adaptive
            ],
            precision=4,
        )
    )
    return "\n".join(lines)
