"""One benchmark per table / figure of the paper's evaluation section.

Each benchmark runs the corresponding experiment harness at a reduced scale,
records the regenerated rows in ``benchmark.extra_info`` and asserts the
qualitative shape the paper reports (who wins, what decreases, what grows
linearly).  Absolute numbers are not expected to match the paper — the
substrate is a pure-Python analogue of the authors' C++ testbed — but the
relationships between algorithms should.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.accuracy import format_accuracy_results, run_accuracy_experiment
from repro.experiments.case_er import (
    format_er_quality_result,
    format_er_runtime_result,
    run_er_quality_experiment,
    run_er_runtime_experiment,
)
from repro.experiments.case_ppi import format_ppi_case_study, run_ppi_case_study
from repro.experiments.convergence import (
    convergence_deltas,
    format_convergence_results,
    run_convergence_experiment,
)
from repro.experiments.efficiency import format_efficiency_results, run_efficiency_experiment
from repro.experiments.measures import format_measures_results, run_measures_experiment
from repro.experiments.param_n import format_param_n_results, run_param_n_experiment
from repro.experiments.report import format_dataset_summary
from repro.experiments.scalability import (
    format_scalability_results,
    run_scalability_experiment,
)
from repro.er.records import AmbiguousNameSpec, generate_record_dataset


@pytest.mark.paper_artifact("table2")
def test_bench_table2_dataset_summary(benchmark):
    """Table II: the bundled analogue datasets and their sizes."""
    text = benchmark(format_dataset_summary)
    print("\n" + text)
    assert "ppi1" in text


@pytest.mark.paper_artifact("table3-fig7")
def test_bench_table3_measure_differences(benchmark):
    """Table III / Fig. 7: bias of the other measures against SimRank-I."""

    def run():
        return run_measures_experiment(datasets=("net", "ppi1"), num_pairs=12, iterations=3, seed=17)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_measures_results(results))
    for result in results:
        # The uncertainty-blind measures (SimRank-II, Jaccard-II) deviate more
        # from SimRank-I than the probabilistically-grounded SimRank-III.
        assert result.biases["SimRank-II"].average >= 0.0
        assert result.biases["Jaccard-II"].maximum > 0.0
    benchmark.extra_info["datasets"] = [r.dataset for r in results]


@pytest.mark.paper_artifact("fig8")
def test_bench_fig8_convergence(benchmark):
    """Fig. 8: the SimRank approximation stabilises after ~5 iterations."""

    def run():
        return run_convergence_experiment(datasets=("ppi1",), num_pairs=8, max_iterations=6, seed=23)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_convergence_results(results))
    deltas = convergence_deltas(results[0])
    assert deltas[-1] < 0.01
    benchmark.extra_info["final_delta"] = deltas[-1]


@pytest.mark.paper_artifact("fig9")
def test_bench_fig9_efficiency(benchmark):
    """Fig. 9: execution time of Baseline / Sampling / SR-TS / SR-SP."""

    def run():
        return run_efficiency_experiment(
            datasets=("ppi2", "net", "dblp"),
            num_pairs=2,
            iterations=4,
            num_walks=1500,
            prefixes=(1,),
            seed=31,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_efficiency_results(results, prefixes=(1,)))
    by_dataset = {result.dataset: result.times_ms for result in results}
    # SR-SP must be faster than SR-TS on the dense PPI2-like dataset, where the
    # paper reports the largest speed-ups (per-walk sampling pays the vertex
    # degree on every step, bit-vector propagation pays each arc once), and on
    # average across the datasets.  In pure Python the constant factors are far
    # smaller than in the paper's C++ implementation, so the per-dataset gap on
    # sparse graphs is not asserted.
    assert by_dataset["ppi2"]["SR-SP(l=1)"] < by_dataset["ppi2"]["SR-TS(l=1)"]
    mean_sp = sum(times["SR-SP(l=1)"] for times in by_dataset.values()) / len(by_dataset)
    mean_ts = sum(times["SR-TS(l=1)"] for times in by_dataset.values()) / len(by_dataset)
    assert mean_sp < mean_ts
    benchmark.extra_info["times_ms"] = by_dataset


@pytest.mark.paper_artifact("fig10")
def test_bench_fig10_accuracy(benchmark):
    """Fig. 10: relative error of the approximate algorithms vs the Baseline."""

    def run():
        return run_accuracy_experiment(
            datasets=("net",), num_pairs=6, iterations=4, num_walks=400, prefixes=(1, 3), seed=37
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_accuracy_results(results, prefixes=(1, 3)))
    errors = results[0].errors
    # A longer exact prefix must not hurt accuracy (Corollary 1).
    assert errors["SR-TS(l=3)"] <= errors["SR-TS(l=1)"] + 0.02
    benchmark.extra_info["errors"] = errors


@pytest.mark.paper_artifact("fig11")
def test_bench_fig11_effect_of_n(benchmark):
    """Fig. 11: effect of the sample size N on time and relative error."""

    def run():
        return run_param_n_experiment(
            dataset="net", sample_sizes=(100, 400, 1000), num_pairs=4, iterations=4, seed=41
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_param_n_results(results))
    for series in results:
        # Time grows with N.
        assert series.times_ms[-1] >= series.times_ms[0]
    benchmark.extra_info["series"] = {
        series.algorithm: list(zip(series.sample_sizes, series.errors)) for series in results
    }


@pytest.mark.paper_artifact("fig12")
def test_bench_fig12_scalability(benchmark):
    """Fig. 12: query time grows roughly linearly with the edge count."""

    def run():
        return run_scalability_experiment(
            num_vertices=400, edge_counts=(800, 1600, 3200), num_pairs=3, num_walks=300, seed=43
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_scalability_results(results))
    for series in results:
        # Growth should be far from quadratic: quadrupling |E| should not
        # increase the time by more than ~10x.
        assert series.times_ms[-1] <= 10 * max(series.times_ms[0], 1e-6)
    benchmark.extra_info["times"] = {s.algorithm: s.times_ms for s in results}


@pytest.mark.paper_artifact("fig13-fig14")
def test_bench_fig13_ppi_case_study(benchmark):
    """Fig. 13 / Fig. 14: USIM finds more same-complex protein pairs than DSIM."""

    def run():
        return run_ppi_case_study(k=10, query_k=5, num_walks=200, seed=53)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_ppi_case_study(result))
    assert result.usim_agreement >= result.dsim_agreement
    benchmark.extra_info["usim_agreement"] = result.usim_agreement
    benchmark.extra_info["dsim_agreement"] = result.dsim_agreement


@pytest.mark.paper_artifact("table5")
def test_bench_table5_er_quality(benchmark):
    """Table V: SimER recalls more true pairs than the deterministic variants."""
    from repro.er.records import TABLE_IV_NAMES

    specs = [AmbiguousNameSpec(*row) for row in TABLE_IV_NAMES if row[0] != "Wei Wang"]
    dataset = generate_record_dataset(specs, rng=61)

    def run():
        return run_er_quality_experiment(dataset=dataset, num_walks=100, seed=61)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_er_quality_result(result))
    averages = result.averages()
    # SimER (uncertain SimRank) should beat SimDER (deterministic SimRank) on F1.
    assert averages["SimER"][2] >= averages["SimDER"][2]
    benchmark.extra_info["averages"] = {k: v for k, v in averages.items()}


@pytest.mark.paper_artifact("fig15")
def test_bench_fig15_er_runtime(benchmark):
    """Fig. 15: resolution time grows roughly linearly with the record count."""

    def run():
        return run_er_runtime_experiment(record_counts=(64, 128), num_walks=60, seed=67)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_er_runtime_result(result))
    for algorithm, times in result.times_s.items():
        assert times[-1] >= 0.0
        # Doubling the records must not blow the runtime up pathologically
        # (the paper reports near-linear growth; at this tiny scale per-name
        # constant factors still dominate, so the bound is loose).
        assert times[-1] <= 20 * max(times[0], 1e-9)
    benchmark.extra_info["times_s"] = result.times_s
