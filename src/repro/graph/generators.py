"""Synthetic uncertain-graph generators.

The paper evaluates on PPI networks (STRING), co-authorship networks
(Condmat, Net, DBLP) and R-MAT synthetic graphs.  None of those datasets is
bundled here, so this module generates structurally analogous uncertain graphs
at laptop scale:

* :func:`erdos_renyi_uncertain` — homogeneous random digraphs.
* :func:`rmat_uncertain` — recursive-matrix graphs (the paper's scalability
  experiment uses R-MAT with uniform edge probabilities).
* :func:`planted_partition_ppi` — PPI-like graphs with planted protein
  complexes that serve as the MIPS ground-truth stand-in for the case study.
* :func:`co_authorship_graph` — skewed-degree symmetric graphs resembling the
  Condmat / Net / DBLP co-authorship networks; edge probabilities are drawn
  uniformly, matching how the paper synthesises probabilities for those
  datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import RandomState, ensure_rng


def _probability_for(rng: np.random.Generator, low: float, high: float) -> float:
    """Draw an arc probability uniformly from ``(low, high]`` (never 0)."""
    value = float(rng.uniform(low, high))
    return max(value, 1e-6)


def assign_uniform_probabilities(
    graph: UncertainGraph,
    low: float = 0.0,
    high: float = 1.0,
    rng: RandomState = None,
) -> UncertainGraph:
    """Return a copy of ``graph`` with fresh arc probabilities drawn uniformly.

    This mirrors the paper's treatment of the Condmat/Net/DBLP datasets, whose
    probabilities are generated synthetically.
    """
    if not 0.0 <= low < high <= 1.0:
        raise InvalidParameterError(
            f"expected 0 <= low < high <= 1, got low={low}, high={high}"
        )
    generator = ensure_rng(rng)
    result = UncertainGraph(vertices=graph.vertices())
    for u, v, _ in graph.arcs():
        result.add_arc(u, v, _probability_for(generator, low, high))
    return result


def erdos_renyi_uncertain(
    num_vertices: int,
    arc_probability: float,
    prob_low: float = 0.2,
    prob_high: float = 1.0,
    rng: RandomState = None,
) -> UncertainGraph:
    """G(n, p) directed uncertain graph.

    Every ordered pair (excluding self-loops) carries an arc with probability
    ``arc_probability``; each present arc receives an existence probability
    drawn uniformly from ``(prob_low, prob_high]``.
    """
    if num_vertices < 0:
        raise InvalidParameterError(f"num_vertices must be >= 0, got {num_vertices}")
    if not 0.0 <= arc_probability <= 1.0:
        raise InvalidParameterError(
            f"arc_probability must be in [0, 1], got {arc_probability}"
        )
    generator = ensure_rng(rng)
    graph = UncertainGraph(vertices=range(num_vertices))
    if num_vertices <= 1 or arc_probability == 0.0:
        return graph
    mask = generator.random((num_vertices, num_vertices)) < arc_probability
    np.fill_diagonal(mask, False)
    rows, cols = np.nonzero(mask)
    for u, v in zip(rows.tolist(), cols.tolist()):
        graph.add_arc(u, v, _probability_for(generator, prob_low, prob_high))
    return graph


def rmat_uncertain(
    num_vertices: int,
    num_edges: int,
    partition: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    prob_low: float = 0.0,
    prob_high: float = 1.0,
    rng: RandomState = None,
    symmetric: bool = False,
) -> UncertainGraph:
    """R-MAT recursive-matrix generator (Chakrabarti et al., SDM'04).

    ``num_vertices`` is rounded up to the next power of two internally; the
    returned graph keeps only the vertices that received at least one arc plus
    enough isolated vertices to reach ``num_vertices``.  Duplicate arcs are
    dropped, so the realised edge count can be slightly below ``num_edges``.
    This is the generator behind the paper's scalability experiment (Fig. 12),
    with arc probabilities drawn uniformly at random from ``[0, 1]``.
    """
    if num_vertices <= 0:
        raise InvalidParameterError(f"num_vertices must be positive, got {num_vertices}")
    if num_edges < 0:
        raise InvalidParameterError(f"num_edges must be non-negative, got {num_edges}")
    a, b, c, d = partition
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise InvalidParameterError(f"partition probabilities must sum to 1, got {total}")
    generator = ensure_rng(rng)
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    size = 1 << scale

    probs = np.array([a, b, c, d], dtype=float)
    seen: set[Tuple[int, int]] = set()
    graph = UncertainGraph(vertices=range(num_vertices))
    attempts = 0
    max_attempts = 20 * max(num_edges, 1)
    while len(seen) < num_edges and attempts < max_attempts:
        attempts += 1
        row, col = 0, 0
        span = size
        while span > 1:
            span //= 2
            quadrant = generator.choice(4, p=probs)
            if quadrant in (1, 3):
                col += span
            if quadrant in (2, 3):
                row += span
        u, v = row % num_vertices, col % num_vertices
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        probability = _probability_for(generator, prob_low, prob_high)
        graph.add_arc(u, v, probability)
        if symmetric and (v, u) not in seen:
            seen.add((v, u))
            graph.add_arc(v, u, probability)
    return graph


@dataclass
class PPINetwork:
    """A synthetic protein-protein interaction network with planted complexes.

    Attributes
    ----------
    graph:
        The symmetric uncertain interaction graph.  Vertices are protein names
        (strings such as ``"P017"``).
    complexes:
        The planted protein complexes (each a list of protein names); these
        play the role of the MIPS ground truth in the similar-protein case
        study.
    """

    graph: UncertainGraph
    complexes: List[List[str]] = field(default_factory=list)

    def complex_of(self) -> Dict[str, int]:
        """Mapping from protein name to the index of its complex (if any)."""
        membership: Dict[str, int] = {}
        for index, members in enumerate(self.complexes):
            for protein in members:
                membership[protein] = index
        return membership

    def share_complex(self, protein_a: str, protein_b: str) -> bool:
        """Whether two proteins were planted in a common complex."""
        membership = self.complex_of()
        return (
            protein_a in membership
            and protein_b in membership
            and membership[protein_a] == membership[protein_b]
        )


def planted_partition_ppi(
    num_complexes: int = 12,
    complex_size: int = 6,
    num_background: int = 30,
    p_within: float = 0.75,
    p_between: float = 0.02,
    prob_within: Tuple[float, float] = (0.6, 0.95),
    prob_between: Tuple[float, float] = (0.1, 0.5),
    rng: RandomState = None,
) -> PPINetwork:
    """Generate a PPI-like uncertain graph with planted protein complexes.

    Proteins inside a complex interact densely with high confidence; proteins
    from different complexes (and background proteins) interact sparsely with
    low confidence, emulating the noise of high-throughput experiments.  The
    planted complexes are returned as the ground truth for the case study
    (Fig. 13 / Fig. 14 of the paper).
    """
    if num_complexes < 0 or complex_size < 0 or num_background < 0:
        raise InvalidParameterError("sizes must be non-negative")
    generator = ensure_rng(rng)

    num_proteins = num_complexes * complex_size + num_background
    proteins = [f"P{i:03d}" for i in range(num_proteins)]
    graph = UncertainGraph(vertices=proteins)

    complexes: List[List[str]] = []
    for index in range(num_complexes):
        members = proteins[index * complex_size : (index + 1) * complex_size]
        complexes.append(list(members))
        for i, protein_a in enumerate(members):
            for protein_b in members[i + 1 :]:
                if generator.random() < p_within:
                    graph.add_undirected_edge(
                        protein_a,
                        protein_b,
                        _probability_for(generator, *prob_within),
                    )

    # Sparse low-confidence background interactions across the whole network.
    for i, protein_a in enumerate(proteins):
        for protein_b in proteins[i + 1 :]:
            if graph.has_arc(protein_a, protein_b):
                continue
            if generator.random() < p_between:
                graph.add_undirected_edge(
                    protein_a,
                    protein_b,
                    _probability_for(generator, *prob_between),
                )
    return PPINetwork(graph=graph, complexes=complexes)


def co_authorship_graph(
    num_vertices: int,
    average_degree: float = 6.0,
    prob_low: float = 0.0,
    prob_high: float = 1.0,
    rng: RandomState = None,
) -> UncertainGraph:
    """Skewed-degree symmetric uncertain graph resembling co-authorship data.

    Uses a preferential-attachment process: each new vertex attaches
    ``average_degree / 2`` undirected edges to existing vertices chosen with
    probability proportional to their current degree + 1.  Edge probabilities
    are uniform in ``(prob_low, prob_high]``, as in the paper's synthetic
    probability assignment for Condmat / Net / DBLP.
    """
    if num_vertices <= 0:
        raise InvalidParameterError(f"num_vertices must be positive, got {num_vertices}")
    if average_degree < 0:
        raise InvalidParameterError(f"average_degree must be >= 0, got {average_degree}")
    generator = ensure_rng(rng)
    graph = UncertainGraph(vertices=range(num_vertices))
    edges_per_vertex = max(1, int(round(average_degree / 2)))
    degrees = np.ones(num_vertices, dtype=float)
    for new_vertex in range(1, num_vertices):
        existing = new_vertex
        attach_count = min(edges_per_vertex, existing)
        weights = degrees[:existing] / degrees[:existing].sum()
        targets = generator.choice(existing, size=attach_count, replace=False, p=weights)
        for target in np.atleast_1d(targets).tolist():
            if graph.has_arc(new_vertex, target):
                continue
            probability = _probability_for(generator, prob_low, prob_high)
            graph.add_undirected_edge(new_vertex, int(target), probability)
            degrees[new_vertex] += 1
            degrees[int(target)] += 1
    return graph


def random_vertex_pairs(
    graph: UncertainGraph,
    count: int,
    rng: RandomState = None,
    distinct: bool = True,
) -> List[Tuple[object, object]]:
    """Sample ``count`` vertex pairs uniformly at random (with replacement).

    The experiments of the paper evaluate the algorithms on randomly chosen
    vertex pairs; ``distinct=True`` rejects pairs whose endpoints coincide.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    vertices = graph.vertices()
    if not vertices or (distinct and len(vertices) < 2):
        raise InvalidParameterError("graph has too few vertices to sample pairs")
    generator = ensure_rng(rng)
    pairs: List[Tuple[object, object]] = []
    while len(pairs) < count:
        u, v = generator.choice(len(vertices), size=2, replace=True)
        if distinct and u == v:
            continue
        pairs.append((vertices[int(u)], vertices[int(v)]))
    return pairs


def related_vertex_pairs(
    graph: UncertainGraph,
    count: int,
    rng: RandomState = None,
    max_attempts_per_pair: int = 200,
) -> List[Tuple[object, object]]:
    """Sample ``count`` distinct vertex pairs that lie within two hops of each other.

    The paper samples vertex pairs uniformly over graphs with thousands of
    vertices; at the reduced scale of the bundled analogue datasets a uniform
    pair is almost always structurally unrelated (SimRank ~ 0), which makes
    relative-error and convergence measurements degenerate.  This sampler
    draws a random vertex and pairs it with a random vertex at distance one or
    two, which matches the similarity magnitudes the paper reports while still
    exercising the full algorithms.  It falls back to uniform pairs when a
    related partner cannot be found (isolated vertices).
    """
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    vertices = graph.vertices()
    if len(vertices) < 2:
        raise InvalidParameterError("graph has too few vertices to sample pairs")
    generator = ensure_rng(rng)
    pairs: List[Tuple[object, object]] = []
    attempts = 0
    budget = max(count * max_attempts_per_pair, 1)
    while len(pairs) < count and attempts < budget:
        attempts += 1
        u = vertices[int(generator.integers(len(vertices)))]
        neighborhood = set(graph.out_neighbors(u))
        for neighbor in list(neighborhood):
            neighborhood.update(graph.out_neighbors(neighbor))
        neighborhood.discard(u)
        if not neighborhood:
            continue
        candidates = sorted(neighborhood, key=repr)
        v = candidates[int(generator.integers(len(candidates)))]
        pairs.append((u, v))
    while len(pairs) < count:
        pairs.extend(random_vertex_pairs(graph, count - len(pairs), rng=generator))
    return pairs
