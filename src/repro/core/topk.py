"""Top-k similarity queries on uncertain graphs.

Both case studies of the paper are top-k queries: the protein study reports
the top-20 most similar protein pairs and the top-5 proteins most similar to a
query protein.  These helpers evaluate a SimRank estimator over a candidate
set and return the best-scoring items.
"""

from __future__ import annotations

import heapq
from itertools import combinations
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.engine import SimRankEngine
from repro.utils.errors import InvalidParameterError

Vertex = Hashable
ScoredPair = Tuple[Vertex, Vertex, float]
ScoredVertex = Tuple[Vertex, float]


def top_k_similar_pairs(
    engine: SimRankEngine,
    k: int,
    candidate_pairs: Optional[Iterable[Tuple[Vertex, Vertex]]] = None,
    method: str = "two_phase",
    **overrides: object,
) -> List[ScoredPair]:
    """The ``k`` most similar vertex pairs.

    ``candidate_pairs`` restricts the search (recommended — the full pair
    space is quadratic); by default all unordered pairs of distinct vertices
    are evaluated, which is only sensible for small graphs.

    Returns a list of ``(u, v, score)`` sorted by decreasing score.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if candidate_pairs is None:
        candidate_pairs = combinations(engine.graph.vertices(), 2)
    scored: List[Tuple[float, int, Vertex, Vertex]] = []
    for counter, (u, v) in enumerate(candidate_pairs):
        result = engine.similarity(u, v, method=method, **overrides)
        item = (result.score, -counter, u, v)
        if len(scored) < k:
            heapq.heappush(scored, item)
        elif item > scored[0]:
            heapq.heapreplace(scored, item)
    ranked = sorted(scored, reverse=True)
    return [(u, v, score) for score, _, u, v in ranked]


def top_k_similar_to(
    engine: SimRankEngine,
    query: Vertex,
    k: int,
    candidates: Optional[Sequence[Vertex]] = None,
    method: str = "two_phase",
    **overrides: object,
) -> List[ScoredVertex]:
    """The ``k`` vertices most similar to ``query``.

    ``candidates`` defaults to every other vertex of the graph.  Returns
    ``(vertex, score)`` pairs sorted by decreasing score.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if not engine.graph.has_vertex(query):
        raise InvalidParameterError(f"query vertex {query!r} is not in the graph")
    if candidates is None:
        candidates = [v for v in engine.graph.vertices() if v != query]
    scored: List[Tuple[float, int, Vertex]] = []
    for counter, vertex in enumerate(candidates):
        if vertex == query:
            continue
        result = engine.similarity(query, vertex, method=method, **overrides)
        item = (result.score, -counter, vertex)
        if len(scored) < k:
            heapq.heappush(scored, item)
        elif item > scored[0]:
            heapq.heapreplace(scored, item)
    ranked = sorted(scored, reverse=True)
    return [(vertex, score) for score, _, vertex in ranked]
