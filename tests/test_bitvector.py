"""Unit and property tests for repro.utils.bitvector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitvector import BitVector, popcount


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_small_values(self):
        assert popcount(0b1011) == 3

    def test_large_value(self):
        assert popcount((1 << 200) - 1) == 200

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)


class TestConstruction:
    def test_zeros_has_no_bits(self):
        vector = BitVector.zeros(16)
        assert vector.count() == 0
        assert vector.is_zero()
        assert not vector

    def test_ones_has_all_bits(self):
        vector = BitVector.ones(16)
        assert vector.count() == 16
        assert all(vector.get(i) for i in range(16))

    def test_ones_width_zero(self):
        assert BitVector.ones(0).count() == 0

    def test_from_indices(self):
        vector = BitVector.from_indices(8, [0, 3, 7])
        assert vector.count() == 3
        assert vector.get(0) and vector.get(3) and vector.get(7)
        assert not vector.get(1)

    def test_from_indices_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector.from_indices(4, [4])

    def test_from_bool_array(self):
        flags = np.array([True, False, True, True])
        vector = BitVector.from_bool_array(flags)
        assert vector.width == 4
        assert list(vector.indices()) == [0, 2, 3]

    def test_from_bool_array_rejects_matrix(self):
        with pytest.raises(ValueError):
            BitVector.from_bool_array(np.zeros((2, 2), dtype=bool))

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_bits_beyond_width_rejected(self):
        with pytest.raises(ValueError):
            BitVector(2, 0b100)


class TestOperations:
    def test_and(self):
        a = BitVector.from_indices(8, [0, 1, 2])
        b = BitVector.from_indices(8, [1, 2, 3])
        assert list((a & b).indices()) == [1, 2]

    def test_or(self):
        a = BitVector.from_indices(8, [0, 1])
        b = BitVector.from_indices(8, [3])
        assert list((a | b).indices()) == [0, 1, 3]

    def test_xor(self):
        a = BitVector.from_indices(8, [0, 1])
        b = BitVector.from_indices(8, [1, 2])
        assert list((a ^ b).indices()) == [0, 2]

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector.zeros(4) & BitVector.zeros(8)

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            BitVector.zeros(4) & 3  # type: ignore[operator]

    def test_with_bit(self):
        vector = BitVector.zeros(8).with_bit(5)
        assert vector.get(5)
        assert vector.count() == 1

    def test_with_bit_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.zeros(8).with_bit(8)

    def test_get_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.zeros(8).get(-1)

    def test_equality_and_hash(self):
        a = BitVector.from_indices(8, [1, 2])
        b = BitVector.from_indices(8, [1, 2])
        c = BitVector.from_indices(9, [1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a vector"

    def test_len_and_repr(self):
        vector = BitVector.from_indices(10, [0])
        assert len(vector) == 10
        assert "width=10" in repr(vector)

    def test_round_trip_bool_array(self):
        flags = np.array([True, False, False, True, True])
        assert np.array_equal(BitVector.from_bool_array(flags).to_bool_array(), flags)


@given(st.lists(st.booleans(), min_size=1, max_size=80), st.lists(st.booleans(), min_size=1, max_size=80))
def test_and_count_matches_numpy(flags_a, flags_b):
    """Popcount of AND equals numpy's count of elementwise AND (same width)."""
    width = min(len(flags_a), len(flags_b))
    a = np.array(flags_a[:width], dtype=bool)
    b = np.array(flags_b[:width], dtype=bool)
    vector = BitVector.from_bool_array(a) & BitVector.from_bool_array(b)
    assert vector.count() == int((a & b).sum())


@given(st.lists(st.booleans(), min_size=1, max_size=80))
def test_or_with_zero_is_identity(flags):
    arr = np.array(flags, dtype=bool)
    vector = BitVector.from_bool_array(arr)
    assert (vector | BitVector.zeros(vector.width)) == vector
    assert (vector & BitVector.ones(vector.width)) == vector


@given(st.lists(st.booleans(), min_size=1, max_size=80))
def test_count_equals_sum(flags):
    arr = np.array(flags, dtype=bool)
    assert BitVector.from_bool_array(arr).count() == int(arr.sum())
