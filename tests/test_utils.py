"""Tests for repro.utils.rng, repro.utils.stats, repro.utils.timer and errors."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.errors import GraphFormatError, InvalidParameterError, ReproError
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import (
    DEFAULT_Z,
    BiasSummary,
    batch_means_stderr,
    mean_and_max,
    normal_interval,
    normalize_to_unit_interval,
    relative_error,
    relative_errors,
    summarize_bias,
    wilson_interval,
)
from repro.utils.timer import Timer, time_call, timed


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rngs_count(self):
        children = spawn_rngs(3, 5)
        assert len(children) == 5
        values = {child.random() for child in children}
        assert len(values) == 5  # children differ

    def test_spawn_rngs_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 3)
        assert len(children) == 3

    def test_spawn_rngs_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_rngs_deterministic(self):
        first = [g.random() for g in spawn_rngs(11, 4)]
        second = [g.random() for g in spawn_rngs(11, 4)]
        assert first == second


class TestRelativeError:
    def test_exact_match(self):
        assert relative_error(0.5, 0.5) == 0.0

    def test_simple_case(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_zero_reference_falls_back_to_absolute(self):
        assert relative_error(0.02, 0.0) == pytest.approx(0.02)

    def test_vectorised(self):
        errors = relative_errors([1.1, 2.0], [1.0, 4.0])
        assert errors == pytest.approx([0.1, 0.5])

    def test_vectorised_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [1.0, 2.0])

    @given(st.floats(0.001, 100), st.floats(0.001, 100))
    def test_non_negative(self, estimate, reference):
        assert relative_error(estimate, reference) >= 0.0


class TestMeanAndMax:
    def test_values(self):
        assert mean_and_max([1.0, 2.0, 3.0]) == (2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_max([])


class TestBias:
    def test_summary(self):
        summary = summarize_bias([0.0, 0.5, 1.0], [0.1, 0.5, 0.7])
        assert summary.average == pytest.approx((0.1 + 0.0 + 0.3) / 3)
        assert summary.maximum == pytest.approx(0.3)
        assert summary.minimum == pytest.approx(0.0)
        assert summary.as_row() == (summary.average, summary.maximum, summary.minimum)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            summarize_bias([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_bias([], [])

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=50))
    def test_bias_against_self_is_zero(self, values):
        summary = summarize_bias(values, values)
        assert summary.average == 0.0
        assert summary.maximum == 0.0


class TestNormalize:
    def test_unit_interval(self):
        normalized = normalize_to_unit_interval([2.0, 4.0, 6.0])
        assert normalized == pytest.approx([0.0, 0.5, 1.0])

    def test_constant_series(self):
        assert normalize_to_unit_interval([3.0, 3.0]) == pytest.approx([0.0, 0.0])

    def test_empty(self):
        assert normalize_to_unit_interval([]).size == 0

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=40))
    def test_range(self, values):
        normalized = normalize_to_unit_interval(values)
        assert normalized.min() >= 0.0
        assert normalized.max() <= 1.0 + 1e-12


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert len(timer.intervals) == 1
        assert timer.mean_interval == pytest.approx(timer.elapsed)

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_interval_empty(self):
        assert Timer().mean_interval == 0.0

    def test_timed_helper(self):
        with timed() as timer:
            time.sleep(0.005)
        assert timer.elapsed > 0.0

    def test_time_call(self):
        result, elapsed = time_call(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0


class TestBatchMeansStderr:
    def test_matches_manual_computation(self):
        values = [0.1, 0.2, 0.3, 0.4]
        expected = np.std(values, ddof=1) / np.sqrt(len(values))
        assert batch_means_stderr(values) == pytest.approx(expected)

    def test_constant_shards_have_zero_stderr(self):
        assert batch_means_stderr([0.25, 0.25, 0.25]) == 0.0

    def test_needs_two_shards(self):
        with pytest.raises(ValueError):
            batch_means_stderr([0.5])

    def test_half_width_shrinks_like_inverse_sqrt_n(self):
        """Averaging k× more i.i.d. shards shrinks the stderr ~1/sqrt(k)."""
        rng = np.random.default_rng(99)
        population = rng.uniform(0.0, 1.0, size=4096)
        small = batch_means_stderr(population[:64])
        large = batch_means_stderr(population[:1024])
        # 16x the shards → ~4x smaller half-width (generous tolerance: the
        # sample std itself fluctuates).
        assert large < small / 2.5
        assert large > small / 6.5

    def test_bit_deterministic(self):
        values = list(np.random.default_rng(5).uniform(size=32))
        assert batch_means_stderr(values) == batch_means_stderr(list(values))


class TestNormalInterval:
    def test_contains_and_centers_on_mean(self):
        low, high = normal_interval(0.5, 0.01)
        assert low < 0.5 < high
        assert (low + high) / 2 == pytest.approx(0.5)
        assert high - low == pytest.approx(2 * DEFAULT_Z * 0.01)

    def test_clips_to_unit_interval(self):
        low, high = normal_interval(0.01, 0.05)
        assert low == 0.0
        low, high = normal_interval(0.99, 0.05)
        assert high == 1.0

    def test_degenerate_all_zero_stays_in_unit_interval(self):
        scores = [0.0] * 8
        stderr = batch_means_stderr(scores)
        low, high = normal_interval(float(np.mean(scores)), stderr)
        assert (low, high) == (0.0, 0.0)

    def test_degenerate_all_one_stays_in_unit_interval(self):
        scores = [1.0] * 8
        stderr = batch_means_stderr(scores)
        low, high = normal_interval(float(np.mean(scores)), stderr)
        assert (low, high) == (1.0, 1.0)

    def test_no_clip(self):
        low, high = normal_interval(0.0, 1.0, z=1.0, clip=None)
        assert low == pytest.approx(-1.0)
        assert high == pytest.approx(1.0)

    def test_rejects_negative_stderr(self):
        with pytest.raises(ValueError):
            normal_interval(0.5, -0.1)

    @given(
        st.floats(0.0, 1.0),
        st.floats(0.0, 0.5),
    )
    def test_interval_always_contains_clipped_mean(self, mean, stderr):
        low, high = normal_interval(mean, stderr)
        assert 0.0 <= low <= high <= 1.0
        assert low <= mean <= high

    def test_interval_contains_full_bundle_point_estimate(self):
        """The interval of per-shard scores covers the full-bundle mean.

        The full-bundle estimate is exactly the mean of equal-size shard
        scores (SimRank is linear in the meeting probabilities), so the
        normal interval built from the shard scores must contain it.
        """
        rng = np.random.default_rng(21)
        shard_scores = rng.uniform(0.05, 0.25, size=16)
        full_estimate = float(shard_scores.mean())
        low, high = normal_interval(
            full_estimate, batch_means_stderr(shard_scores)
        )
        assert low <= full_estimate <= high


class TestWilsonInterval:
    def test_half_sample(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert 0.0 <= low <= high <= 1.0

    def test_degenerate_all_zero(self):
        low, high = wilson_interval(0, 100)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < high < 0.1  # Wilson never collapses to a point at 0

    def test_degenerate_all_one(self):
        low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0, abs=1e-12)
        assert 0.9 < low < 1.0

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)

    @given(st.integers(0, 200), st.integers(1, 200))
    def test_bounds_always_in_unit_interval(self, successes, trials):
        if successes > trials:
            successes = trials
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0
        # The point estimate sits inside the interval (up to float noise at
        # the degenerate endpoints, where the exact bound is 0 or 1).
        assert low - 1e-9 <= successes / trials <= high + 1e-9

    def test_bit_deterministic(self):
        assert wilson_interval(37, 128) == wilson_interval(37, 128)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(InvalidParameterError, ReproError)
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(GraphFormatError, ReproError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise InvalidParameterError("bad parameter")
