"""E3 — Execution time of the four algorithms (Fig. 9).

For random vertex pairs on each dataset the experiment measures the average
single-pair execution time of

* **Baseline** — exact meeting probabilities,
* **Sampling** — plain Monte-Carlo walks,
* **SR-TS(l)** — two-phase with exact prefix ``l`` and per-walk sampling,
* **SR-SP(l)** — two-phase with exact prefix ``l`` and bit-vector sampling,

for ``l = 1, 2, 3``.  The paper's qualitative findings that the harness aims
to reproduce: Baseline degrades badly on large/dense graphs, the sampling
methods are insensitive to graph size (only to density), and SR-SP is much
faster than SR-TS thanks to the shared sampling.

The Baseline column reports ``NaN`` (and is skipped) when the exact walk
extension exceeds its state budget on a dataset — the Python analogue of the
paper's observation that the exact algorithm stops being practical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.baseline import baseline_simrank
from repro.core.engine import SimRankEngine
from repro.core.sampling import sampling_simrank
from repro.core.speedup import FilterVectors
from repro.core.transition import WalkExplosionError
from repro.core.two_phase import two_phase_simrank
from repro.core.walks import AlphaCache
from repro.datasets.registry import load_dataset
from repro.experiments.report import format_table
from repro.graph.generators import random_vertex_pairs
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.timer import time_call


@dataclass
class EfficiencyResult:
    """Average execution time (milliseconds) per algorithm for one dataset."""

    dataset: str
    times_ms: Dict[str, float] = field(default_factory=dict)


def algorithm_labels(prefixes: Sequence[int]) -> List[str]:
    """Column labels in the order Fig. 9 lists the algorithms."""
    labels = ["Baseline", "Sampling"]
    labels.extend(f"SR-TS(l={l})" for l in prefixes)
    labels.extend(f"SR-SP(l={l})" for l in prefixes)
    return labels


def run_efficiency_experiment(
    datasets: Sequence[str] = ("ppi2", "condmat", "ppi3", "dblp"),
    num_pairs: int = 8,
    decay: float = 0.6,
    iterations: int = 4,
    num_walks: int = 500,
    prefixes: Sequence[int] = (1, 2, 3),
    seed: RandomState = 31,
    baseline_max_states: int = 300_000,
    include_baseline: bool = True,
) -> List[EfficiencyResult]:
    """Run E3 and return the average per-pair execution times."""
    generator = ensure_rng(seed)
    results: List[EfficiencyResult] = []
    for name in datasets:
        graph = load_dataset(name)
        pairs = random_vertex_pairs(graph, num_pairs, rng=generator)
        cache = AlphaCache(graph)
        filters = FilterVectors(graph, num_walks, generator)
        filters_v = FilterVectors(graph, num_walks, generator)
        totals: Dict[str, float] = {label: 0.0 for label in algorithm_labels(prefixes)}
        baseline_failed = not include_baseline

        for u, v in pairs:
            if not baseline_failed:
                try:
                    _, elapsed = time_call(
                        baseline_simrank,
                        graph,
                        u,
                        v,
                        decay=decay,
                        iterations=iterations,
                        max_states=baseline_max_states,
                        alpha_cache=cache,
                    )
                    totals["Baseline"] += elapsed
                except WalkExplosionError:
                    baseline_failed = True

            _, elapsed = time_call(
                sampling_simrank,
                graph,
                u,
                v,
                decay=decay,
                iterations=iterations,
                num_walks=num_walks,
                rng=generator,
            )
            totals["Sampling"] += elapsed

            for exact_prefix in prefixes:
                _, elapsed = time_call(
                    two_phase_simrank,
                    graph,
                    u,
                    v,
                    decay=decay,
                    iterations=iterations,
                    exact_prefix=exact_prefix,
                    num_walks=num_walks,
                    rng=generator,
                    alpha_cache=cache,
                )
                totals[f"SR-TS(l={exact_prefix})"] += elapsed

                _, elapsed = time_call(
                    two_phase_simrank,
                    graph,
                    u,
                    v,
                    decay=decay,
                    iterations=iterations,
                    exact_prefix=exact_prefix,
                    num_walks=num_walks,
                    rng=generator,
                    use_speedup=True,
                    filters=filters,
                    filters_v=filters_v,
                    alpha_cache=cache,
                )
                totals[f"SR-SP(l={exact_prefix})"] += elapsed

        result = EfficiencyResult(dataset=name)
        for label, total in totals.items():
            if label == "Baseline" and baseline_failed:
                result.times_ms[label] = math.nan
            else:
                result.times_ms[label] = 1000.0 * total / num_pairs
        results.append(result)
    return results


def format_efficiency_results(
    results: Sequence[EfficiencyResult], prefixes: Sequence[int] = (1, 2, 3)
) -> str:
    """Render the Fig. 9 analogue (average milliseconds per query)."""
    labels = algorithm_labels(prefixes)
    headers = ("dataset", *labels)
    rows: List[Tuple[object, ...]] = []
    for result in results:
        rows.append((result.dataset, *[result.times_ms.get(label, math.nan) for label in labels]))
    return format_table(headers, rows, precision=2)
