"""Vectorized batch walk engine for the Sampling algorithm (Section VI-B).

The scalar reference implementation (:func:`repro.core.sampling.sample_walk`)
draws one walk at a time over the dict-of-dict graph, paying a Python-level
dict lookup and RNG call per step.  This module samples all ``N`` walks of a
query endpoint *simultaneously* on a :class:`~repro.graph.csr.CSRGraph`
snapshot, as an ``(N, length + 1)`` integer matrix of dense vertex indices
(``-1`` marking the tail of truncated walks).

Semantics match the scalar sampler exactly: a walk samples *with its walk
probability* by lazily instantiating possible-world arcs — the first time a
walk visits a vertex, each out-arc is materialised independently with its
existence probability and the instantiation is remembered for the rest of
that walk; every visit then chooses uniformly among the instantiated arcs.

Per-(walk, arc) instantiation memory is implemented without storing any
per-walk state: each walk carries a 64-bit *world key* drawn once from the
caller's generator, and the existence draw of arc ``j`` in walk ``i`` is the
counter-based uniform ``splitmix64(world_key_i ^ mix(j))``.  Recomputing the
hash at every visit yields the same Bernoulli outcome, which is exactly the
"remembered instantiation" of the lazy possible world, with O(1) memory and
fully vectorized evaluation.  The uniform *choice* among instantiated arcs is
drawn fresh from the numpy ``Generator`` at every step, as in the scalar code.
"""

from __future__ import annotations

import warnings
from functools import lru_cache
from typing import Callable, Hashable, List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import RandomState, ensure_rng

Vertex = Hashable

#: Estimator backends exposed across the sampling stack.
BACKENDS = ("vectorized", "python")

#: Default number of walks per shard of the keyed sampling scheme.  Part of
#: the RNG scheme: two samplers agree bit-for-bit only if they use the same
#: seed *and* shard size.  (Re-exported by :mod:`repro.service.sharding`.)
DEFAULT_SHARD_SIZE = 256

#: Sentinel marking "walk already truncated" entries of a walk matrix.
NO_VERTEX = -1

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)
#: Salt separating the per-step *choice* stream of the keyed sampler from the
#: per-arc *existence* stream (both are derived from the same world key).
_PICK_SALT = np.uint64(0xD1B54A32D192ED03)
_INV_2_53 = float(2.0**-53)

#: Minimum row-chunk size of the keyed sampler.  Multi-source batches can
#: reach hundreds of thousands of walks; the per-step flat arc arrays of such
#: a batch spill out of cache and the whole sweep becomes memory-bound (a
#: 200k walk sweep runs ~5x slower un-chunked).  Walks are row-independent,
#: so evaluating the batch in chunks is bit-identical and keeps the working
#: set cache-resident; ~2k rows measured best on laptop-class CPUs at the
#: paper datasets' density (average out-degree ~10) and default walk length.
KEYED_CHUNK_MIN_ROWS = 2048

#: Ceiling of :func:`keyed_chunk_rows`: past this, even sparse-graph sweeps
#: stop gaining from fewer chunk boundaries.
KEYED_CHUNK_MAX_ROWS = 8192

#: Per-chunk arc budget behind :func:`keyed_chunk_rows`.  The step loop's
#: working set is the flat candidate-arc arrays — rows × average out-degree
#: entries across ~6 temporaries — so the cache-resident chunk size is an
#: *arc* budget, not a row count.
KEYED_CHUNK_TARGET_ARCS = 8192

def __getattr__(name: str):
    # Deprecated module attributes, resolved lazily so ordinary imports pay
    # nothing and touching one warns exactly once per call site.
    if name == "KEYED_CHUNK_ROWS":
        warnings.warn(
            "KEYED_CHUNK_ROWS (the old fixed chunk size) is deprecated; use "
            "keyed_chunk_rows() for the workload-shaped heuristic or "
            "KEYED_CHUNK_MIN_ROWS for its floor",
            DeprecationWarning,
            stacklevel=2,
        )
        return KEYED_CHUNK_MIN_ROWS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def keyed_chunk_rows(length: int, avg_out_degree: float) -> int:
    """Row-chunk size of the keyed sampler for one workload shape.

    Two effects pull in opposite directions.  The per-*step* working set is
    the flat candidate-arc arrays, rows × ``avg_out_degree`` entries — the
    cache-residency constraint that makes chunking worthwhile at all — so
    denser graphs want *fewer* rows per chunk.  The Python-level loop
    overhead, though, is paid once per chunk per step, and a short walk has
    few steps to amortize it over — so small-``n`` (short-walk) sweeps want
    *larger* chunks, which the ``(length + 1) / length`` factor provides
    (2x at one step, asymptotically 1 for long walks).  Sparse short-walk
    workloads no longer serialize on tiny chunks, while at the paper
    datasets' density the result clamps to the measured 2048-row optimum —
    the old fixed size, now the floor.  Chunking affects performance only:
    every walk is a pure function of its world key regardless of chunk
    boundaries.
    """
    steps = max(1, length)
    rows = int(
        KEYED_CHUNK_TARGET_ARCS * (steps + 1) / (steps * max(1.0, avg_out_degree))
    )
    return max(KEYED_CHUNK_MIN_ROWS, min(KEYED_CHUNK_MAX_ROWS, rows))


def shard_world_keys(
    seed: int, vertex_index: int, twin: bool, shard_index: int, shard_length: int
) -> np.ndarray:
    """The world keys of one shard — a pure function of its coordinates.

    This is the key-derivation rule of the deterministic sampling scheme
    shared by every walk producer (the engine's serial
    :class:`repro.core.executors.SerialWalkSource` and the service's
    :class:`repro.service.sharding.ShardedWalkSampler`): the keys of shard
    ``s`` of endpoint ``(vertex, twin)`` come from
    ``SeedSequence(seed, spawn_key=(vertex, twin, s))``, independent of who
    evaluates them, so bundles sampled anywhere under the same ``(seed,
    shard_size)`` scheme are bit-identical.

    Derivation is memoized (the function is pure, so cached values are the
    values): constructing a ``SeedSequence`` + ``Generator`` per shard is
    pure-Python overhead otherwise paid on every batch.  The returned array
    is shared and read-only — copy before mutating.
    """
    return _shard_world_keys_cached(
        int(seed), int(vertex_index), int(bool(twin)), int(shard_index),
        int(shard_length),
    )


@lru_cache(maxsize=1024)
def _shard_world_keys_cached(
    seed: int, vertex_index: int, twin: int, shard_index: int, shard_length: int
) -> np.ndarray:
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(vertex_index, twin, shard_index)
    )
    keys = np.random.default_rng(sequence).integers(
        0, 2**64, size=shard_length, dtype=np.uint64
    )
    keys.flags.writeable = False
    return keys


def endpoint_world_keys(
    seed: int, vertex_index: int, twin: bool, num_walks: int, shard_size: int
) -> np.ndarray:
    """All ``num_walks`` world keys of one endpoint bundle, shard by shard.

    The single place the per-bundle shard layout (including the short last
    shard) is spelled out — every producer of the keyed scheme assembles its
    keys through here, so the layout can never drift between the serial and
    the sharded-parallel samplers.
    """
    keys = np.empty(num_walks, dtype=np.uint64)
    for shard in range(-(-int(num_walks) // int(shard_size))):
        start = shard * shard_size
        stop = min(start + shard_size, num_walks)
        keys[start:stop] = shard_world_keys(
            seed, vertex_index, twin, shard, stop - start
        )
    return keys


def validate_backend(backend: str) -> str:
    """Validate a ``backend=`` argument shared by the sampling stack."""
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a uint64 array (wrapping)."""
    z = x + _SPLITMIX_GAMMA
    z = (z ^ (z >> np.uint64(30))) * _SPLITMIX_M1
    z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_M2
    return z ^ (z >> np.uint64(31))


def _arc_uniforms(world_keys: np.ndarray, arc_ids: np.ndarray) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` for (walk, arc) pairs.

    ``world_keys`` and ``arc_ids`` broadcast against each other; the result is
    a pure function of the pair, which is what makes the lazy possible-world
    instantiation consistent across repeated visits within a walk.
    """
    mixed = _splitmix64(arc_ids.astype(np.uint64)) ^ world_keys
    return (_splitmix64(mixed) >> np.uint64(11)).astype(np.float64) * _INV_2_53


def _pick_uniforms(world_keys: np.ndarray, step: int) -> np.ndarray:
    """Counter-based uniforms in ``[0, 1)`` for the step-``step`` arc choice.

    A pure function of ``(world_key, step)``, drawn from a stream salted away
    from the arc-existence stream of :func:`_arc_uniforms`.  Used by the keyed
    sampler so that a whole walk matrix is a deterministic function of its
    world keys, independent of evaluation order or sharding.
    """
    mixed = _splitmix64(world_keys ^ _PICK_SALT) + np.uint64(step + 1)
    return (_splitmix64(mixed) >> np.uint64(11)).astype(np.float64) * _INV_2_53


def _sample_walks_core(
    csr: CSRGraph,
    sources: np.ndarray,
    length: int,
    world_keys: np.ndarray,
    pick_uniforms: Callable[[np.ndarray, int], np.ndarray],
) -> np.ndarray:
    """Shared step loop of the batch samplers.

    ``pick_uniforms(active, step)`` supplies the uniform used to choose among
    the instantiated arcs of each still-active walk: the stateful sampler
    draws it fresh from a ``Generator``, the keyed sampler derives it from the
    walk's world key and the step counter.
    """
    count = sources.shape[0]
    walks = np.full((count, length + 1), NO_VERTEX, dtype=np.int64)
    walks[:, 0] = sources
    if count == 0 or length == 0:
        return walks

    active = np.arange(count)
    current = sources.astype(np.int64, copy=True)
    indptr, indices, probs = csr.indptr, csr.indices, csr.probs
    for step in range(length):
        if active.size == 0:
            break
        vertices = current[active]
        starts = indptr[vertices]
        degrees = indptr[vertices + 1] - starts
        has_out = degrees > 0
        active, starts, degrees = active[has_out], starts[has_out], degrees[has_out]
        if active.size == 0:
            break
        # Flat ragged layout: one entry per candidate (walk, out-arc) pair, so
        # the per-step work is the actual arc count, not walks × max-degree.
        row_starts = np.concatenate(([0], degrees.cumsum()))
        flat_row = np.repeat(np.arange(active.size), degrees)
        arc_ids = starts[flat_row] + np.arange(row_starts[-1]) - row_starts[flat_row]
        uniforms = _arc_uniforms(world_keys[active][flat_row], arc_ids)
        exists = (uniforms < probs[arc_ids]).astype(np.int64)
        instantiated = np.add.reduceat(exists, row_starts[:-1])
        alive = instantiated > 0
        # Uniform fresh choice among the instantiated arcs of each walk: pick
        # the (picks + 1)-th instantiated arc by its within-row running count.
        picks = (pick_uniforms(active, step) * instantiated).astype(np.int64)
        cumulative = exists.cumsum()
        row_base = cumulative[row_starts[:-1]] - exists[row_starts[:-1]]
        within = cumulative - row_base[flat_row]
        chosen = np.flatnonzero(exists & (within == picks[flat_row] + 1))
        destinations = indices[arc_ids[chosen]]
        active = active[alive]
        walks[active, step + 1] = destinations
        current[active] = destinations
    return walks


def sample_walk_matrix(
    csr: CSRGraph,
    source: int,
    length: int,
    count: int,
    rng: RandomState = None,
) -> np.ndarray:
    """Sample ``count`` lazy-possible-world walks from dense vertex ``source``.

    Returns a ``(count, length + 1)`` int64 matrix whose row ``i`` is walk
    ``i``: column 0 is ``source``, column ``k`` the vertex after ``k`` steps,
    and :data:`NO_VERTEX` once the walk has been truncated (it reached a
    vertex none of whose out-arcs were instantiated in its possible world).
    """
    if not 0 <= source < csr.num_vertices:
        raise InvalidParameterError(f"source index {source} out of range")
    if length < 0:
        raise InvalidParameterError(f"length must be >= 0, got {length}")
    if count < 0:
        raise InvalidParameterError(f"count must be >= 0, got {count}")
    generator = ensure_rng(rng)
    sources = np.full(count, source, dtype=np.int64)
    if count == 0 or length == 0:
        world_keys = np.empty(count, dtype=np.uint64)
    else:
        world_keys = generator.integers(0, 2**64, size=count, dtype=np.uint64)
    return _sample_walks_core(
        csr,
        sources,
        length,
        world_keys,
        lambda active, step: generator.random(active.size),
    )


def sample_walk_matrix_keyed(
    csr: CSRGraph,
    sources: np.ndarray,
    length: int,
    world_keys: np.ndarray,
    chunk_rows: "int | None" = None,
    kernel: "str | None" = None,
) -> np.ndarray:
    """Sample one walk per ``(source, world key)`` pair, fully deterministically.

    Unlike :func:`sample_walk_matrix`, which draws the arc choices from a
    stateful generator, every entry of the returned matrix is a pure function
    of ``(csr, sources[i], world_keys[i])``: the arc-existence draws come from
    the counter-based hash of :func:`_arc_uniforms` and the per-step choice
    among instantiated arcs from :func:`_pick_uniforms`.  This is what makes
    sharded parallel sampling bit-identical to a single-process pass — the
    walks of any subset of rows can be computed anywhere, in any order, and
    concatenated (see :class:`repro.service.sharding.ShardedWalkSampler`).

    ``sources`` may mix different endpoints freely, so the walk bundles of an
    entire query batch can be sampled in one vectorized sweep.

    ``chunk_rows`` overrides the row-chunk size (``None`` = the
    length-scaled heuristic of :func:`keyed_chunk_rows`); it never affects
    the sampled walks, only the evaluation granularity.

    ``kernel`` selects the evaluation backend — one of
    :data:`repro.core.kernels.KERNELS` or ``"auto"``/``None`` for the
    process default (the ``REPRO_KERNEL`` environment variable).  Every
    backend is bit-identical; see :mod:`repro.core.kernels`.
    """
    # Imported lazily: kernels imports this module's splitmix helpers, so a
    # top-level import here would be circular.
    from repro.core import kernels as _kernels

    sources = np.ascontiguousarray(sources, dtype=np.int64)
    world_keys = np.ascontiguousarray(world_keys, dtype=np.uint64)
    if sources.ndim != 1 or world_keys.shape != sources.shape:
        raise InvalidParameterError(
            "sources and world_keys must be 1-d arrays of the same length"
        )
    if length < 0:
        raise InvalidParameterError(f"length must be >= 0, got {length}")
    if sources.size and not (
        0 <= int(sources.min()) and int(sources.max()) < csr.num_vertices
    ):
        raise InvalidParameterError("source indices out of range")
    backend = _kernels.resolve_kernel(kernel)
    return backend.sample(csr, sources, length, world_keys, chunk_rows)


def walk_matrix_from_graph(
    graph: UncertainGraph,
    source: Vertex,
    length: int,
    count: int,
    rng: RandomState = None,
) -> np.ndarray:
    """Label-level convenience wrapper around :func:`sample_walk_matrix`."""
    csr = CSRGraph.from_uncertain(graph)
    return sample_walk_matrix(csr, csr.index_of(source), length, count, rng)


def walk_matrix_to_walks(csr: CSRGraph, walks: np.ndarray) -> List[List[Vertex]]:
    """Convert a walk matrix back to label-level walk lists (for debugging)."""
    result: List[List[Vertex]] = []
    for row in walks:
        walk = [csr.vertex_at(int(v)) for v in row[row >= NO_VERTEX + 1]]
        result.append(walk)
    return result


def meeting_probabilities_from_matrices(
    walks_u: np.ndarray,
    walks_v: np.ndarray,
    iterations: int,
    same_endpoint: bool,
) -> List[float]:
    """Estimate ``m(0) … m(n)`` from two walk matrices (Eq. 13, vectorized).

    ``m(0)`` needs no sampling (1 iff the endpoints coincide); for ``k >= 1``
    the estimate is the fraction of rows where both walks are still alive at
    step ``k`` and stand on the same vertex.
    """
    if walks_u.shape != walks_v.shape:
        raise InvalidParameterError("walk matrices must have the same shape")
    count, columns = walks_u.shape
    if count < 1:
        raise InvalidParameterError("at least one pair of sampled walks is required")
    if columns < iterations + 1:
        raise InvalidParameterError(
            f"walk matrices cover {columns - 1} steps, need {iterations}"
        )
    steps_u = walks_u[:, 1 : iterations + 1]
    steps_v = walks_v[:, 1 : iterations + 1]
    hits = ((steps_u == steps_v) & (steps_u != NO_VERTEX)).sum(axis=0)
    return [1.0 if same_endpoint else 0.0] + (hits / count).tolist()


def meeting_probabilities_against_many(
    walks_u: np.ndarray,
    bundles: Sequence[np.ndarray],
    iterations: int,
    chunk_size: int = 128,
) -> np.ndarray:
    """``m(1) … m(n)`` of one query bundle against many candidate bundles.

    The batched analogue of :func:`meeting_probabilities_from_matrices` for
    top-k-for-vertex queries: instead of one numpy pass per candidate, the
    candidate bundles are stacked (in chunks of ``chunk_size``, to bound the
    transient 3-d array) and compared against the query bundle in a single
    broadcasted comparison.  Returns a ``(len(bundles), iterations)`` float
    array; row ``j`` is ``m(1) … m(n)`` of the pair (query, candidate ``j``).
    ``m(0)`` is not included — it needs no sampling and depends only on
    whether the endpoints coincide, which the caller knows.
    """
    count, columns = walks_u.shape
    if count < 1:
        raise InvalidParameterError("at least one pair of sampled walks is required")
    if columns < iterations + 1:
        raise InvalidParameterError(
            f"walk matrices cover {columns - 1} steps, need {iterations}"
        )
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    steps_u = walks_u[:, 1 : iterations + 1]
    alive_u = steps_u != NO_VERTEX
    result = np.empty((len(bundles), iterations), dtype=np.float64)
    for start in range(0, len(bundles), chunk_size):
        block = bundles[start : start + chunk_size]
        for matrix in block:
            if matrix.shape != walks_u.shape:
                raise InvalidParameterError("walk matrices must have the same shape")
        stacked = np.stack(block)[:, :, 1 : iterations + 1]
        hits = ((stacked == steps_u[None]) & alive_u[None]).sum(axis=1)
        result[start : start + len(block)] = hits / count
    return result


def batch_meeting_probabilities(
    graph: UncertainGraph,
    u: Vertex,
    v: Vertex,
    iterations: int,
    num_walks: int,
    rng: RandomState = None,
) -> List[float]:
    """Vectorized estimate of ``m(0) … m(n)`` for one query pair."""
    if num_walks < 1:
        raise InvalidParameterError(f"num_walks must be >= 1, got {num_walks}")
    generator = ensure_rng(rng)
    csr = CSRGraph.from_uncertain(graph)
    u_index, v_index = csr.index_of(u), csr.index_of(v)
    walks_u = sample_walk_matrix(csr, u_index, iterations, num_walks, generator)
    walks_v = sample_walk_matrix(csr, v_index, iterations, num_walks, generator)
    return meeting_probabilities_from_matrices(
        walks_u, walks_v, iterations, u_index == v_index
    )


def bundle_key(
    vertex_index: int, twin: bool, length: int, num_walks: int
) -> tuple:
    """Canonical store-key *suffix* of one endpoint's walk bundle.

    Every producer prefixes this with its sampling-scheme namespace —
    ``("rng",)`` for the stateful-generator bundles of
    :class:`WalkBundleCache`, ``("keyed", seed, shard_size)`` for the
    deterministic sharded sampler (see
    :meth:`repro.service.sharding.ShardedWalkSampler.store_key`) — so that
    bundles drawn under different schemes can share one
    :class:`~repro.service.bundle_store.WalkBundleStore` without ever being
    mistaken for each other.
    """
    return (int(vertex_index), bool(twin), int(length), int(num_walks))


class WalkBundleCache:
    """Walk matrices sampled once per endpoint and shared across query pairs.

    The *stateful-generator* reference of per-endpoint bundle sharing: each
    unique endpoint's ``(N, n + 1)`` bundle is sampled once (from a shared
    ``Generator``) and reused for every pair it participates in.  Production
    batching moved to the keyed scheme of
    :class:`repro.core.executors.SerialWalkSource` — a pure function of
    ``(seed, vertex, twin, shard)``, order-independent — so this class is
    retained as the simpler executable specification of the sharing idea.
    Individual pair estimates stay unbiased either way; reuse only
    correlates estimates *across* pairs, the same trade the paper makes when
    reusing offline filter vectors.

    Bundles live in a :class:`repro.service.bundle_store.WalkBundleStore`
    rather than a plain dict, so long-running callers can pass a shared,
    LRU-bounded ``store`` and keep memory under a budget; without one, an
    unbounded per-cache store is created (the lifetime of which is the
    lifetime of the cache, i.e. one batched query).
    """

    def __init__(
        self,
        csr: CSRGraph,
        length: int,
        num_walks: int,
        rng: RandomState = None,
        store: "object | None" = None,
    ) -> None:
        if num_walks < 1:
            raise InvalidParameterError(f"num_walks must be >= 1, got {num_walks}")
        self._csr = csr
        self._length = length
        self._num_walks = num_walks
        self._rng = ensure_rng(rng)
        if store is None:
            # Imported lazily: repro.core must stay importable without the
            # service layer, and repro.service imports repro.core.
            from repro.service.bundle_store import WalkBundleStore

            store = WalkBundleStore(budget_bytes=None)
        self._store = store

    @property
    def csr(self) -> CSRGraph:
        """The snapshot the bundles were sampled on."""
        return self._csr

    @property
    def store(self) -> "object":
        """The bundle store backing this cache."""
        return self._store

    def bundle(self, vertex_index: int, twin: bool = False) -> np.ndarray:
        """The (cached) walk matrix of one endpoint.

        ``twin=True`` returns a second, independently sampled bundle for the
        same endpoint — needed for self-pairs ``(u, u)``, where comparing a
        bundle against itself would make the two walks of every sample index
        perfectly correlated and wildly overestimate the meeting probability.
        """
        key = ("rng",) + bundle_key(vertex_index, twin, self._length, self._num_walks)
        bundle = self._store.get(key)
        if bundle is None:
            bundle = sample_walk_matrix(
                self._csr, vertex_index, self._length, self._num_walks, self._rng
            )
            self._store.put(key, bundle)
        return bundle

    def meeting_probabilities(self, u: Vertex, v: Vertex) -> List[float]:
        """``m(0) … m(n)`` for a pair, reusing each endpoint's bundle."""
        u_index = self._csr.index_of(u)
        v_index = self._csr.index_of(v)
        same = u_index == v_index
        return meeting_probabilities_from_matrices(
            self.bundle(u_index), self.bundle(v_index, twin=same), self._length, same
        )


def scalar_walks_as_matrix(
    walks: Sequence[Sequence[Vertex]], csr: CSRGraph, columns: int
) -> np.ndarray:
    """Pack label-level walks from the scalar sampler into a walk matrix.

    Used by the cross-validation tests to compare the two samplers through a
    single code path.
    """
    matrix = np.full((len(walks), columns), NO_VERTEX, dtype=np.int64)
    for row, walk in enumerate(walks):
        for column, vertex in enumerate(walk[:columns]):
            matrix[row, column] = csr.index_of(vertex)
    return matrix
