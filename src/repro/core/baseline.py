"""The Baseline algorithm (Section VI-A): exact meeting probabilities.

The Baseline algorithm computes the transition-probability distributions of
both query vertices exactly (via the walk-extension procedure of
:mod:`repro.core.transition`) and combines them with Definition 1.  It is the
most accurate of the paper's algorithms — its only error is the truncation at
``n`` iterations, bounded by ``c^(n+1)`` (Theorem 2) — but its cost grows with
the number of length-``n`` walks, which is why the paper pairs it with the
sampling-based alternatives.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

import numpy as np

from repro.core.simrank import (
    DEFAULT_DECAY,
    DEFAULT_ITERATIONS,
    SimRankResult,
    meeting_probabilities_from_distributions,
    simrank_from_meeting_probabilities,
    validate_decay,
    validate_iterations,
)
from repro.core.transition import (
    single_source_transition_probabilities,
    transition_probability_matrices,
)
from repro.core.walks import AlphaCache
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.errors import InvalidParameterError

Vertex = Hashable


def baseline_meeting_probabilities(
    graph: UncertainGraph,
    u: Vertex,
    v: Vertex,
    iterations: int,
    max_states: int = 500_000,
    alpha_cache: AlphaCache | None = None,
) -> List[float]:
    """Exact meeting probabilities ``m(0) … m(n)`` for the pair ``(u, v)``.

    Unlike the full SimRank computation, ``iterations`` may be 0 here: the
    two-phase algorithm with an empty exact prefix only needs ``m(0)``.
    """
    if iterations < 0:
        raise InvalidParameterError(f"iterations must be >= 0, got {iterations}")
    cache = alpha_cache if alpha_cache is not None else AlphaCache(graph)
    distributions_u = single_source_transition_probabilities(
        graph, u, iterations, max_states=max_states, alpha_cache=cache
    )
    distributions_v = single_source_transition_probabilities(
        graph, v, iterations, max_states=max_states, alpha_cache=cache
    )
    return meeting_probabilities_from_distributions(distributions_u, distributions_v)


def baseline_simrank(
    graph: UncertainGraph,
    u: Vertex,
    v: Vertex,
    decay: float = DEFAULT_DECAY,
    iterations: int = DEFAULT_ITERATIONS,
    max_states: int = 500_000,
    alpha_cache: AlphaCache | None = None,
) -> SimRankResult:
    """Exact (up to truncation) SimRank similarity between ``u`` and ``v``.

    Parameters
    ----------
    graph:
        The uncertain graph.
    u, v:
        The query vertices.
    decay:
        The decay factor ``c`` of Definition 1 (default 0.6, as in the paper).
    iterations:
        The number of iterations ``n`` (default 5; the paper observes
        convergence within 5 iterations).
    max_states:
        Budget on the number of distinct walk states kept during the exact
        walk extension; exceeding it raises
        :class:`repro.core.transition.WalkExplosionError`.
    alpha_cache:
        Optional shared α cache, useful when evaluating many pairs on the same
        graph.
    """
    decay = validate_decay(decay)
    iterations = validate_iterations(iterations)
    if not graph.has_vertex(u) or not graph.has_vertex(v):
        raise InvalidParameterError(f"both query vertices must be in the graph: {u!r}, {v!r}")
    meeting = baseline_meeting_probabilities(
        graph, u, v, iterations, max_states=max_states, alpha_cache=alpha_cache
    )
    score = simrank_from_meeting_probabilities(meeting, decay)
    return SimRankResult(
        u=u,
        v=v,
        score=score,
        meeting_probabilities=tuple(meeting),
        decay=decay,
        iterations=iterations,
        method="baseline",
        details={"max_states": max_states},
    )


def baseline_simrank_all_pairs(
    graph: UncertainGraph,
    decay: float = DEFAULT_DECAY,
    iterations: int = DEFAULT_ITERATIONS,
    order: Sequence[Vertex] | None = None,
    max_states: int = 500_000,
) -> np.ndarray:
    """All-pairs SimRank matrix ``S(n)`` of an uncertain graph.

    Uses the matrix identity behind Definition 1:
    ``S(n) = c^n · M(n) + (1 − c) · Σ_{k<n} c^k · M(k)`` with
    ``M(k) = W(k) · W(k)ᵀ``.  Only practical on small graphs because the exact
    ``W(k)`` are dense; intended for the effectiveness experiments and tests.
    """
    decay = validate_decay(decay)
    iterations = validate_iterations(iterations)
    matrices = transition_probability_matrices(
        graph, iterations, order=order, max_states=max_states
    )
    n = matrices[0].shape[0]
    similarity = np.zeros((n, n), dtype=float)
    for k in range(iterations):
        meeting = matrices[k] @ matrices[k].T
        similarity += (1.0 - decay) * (decay**k) * meeting
    meeting_last = matrices[iterations] @ matrices[iterations].T
    similarity += (decay**iterations) * meeting_last
    return similarity
