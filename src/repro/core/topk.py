"""Top-k similarity queries on uncertain graphs.

Both case studies of the paper are top-k queries: the protein study reports
the top-20 most similar protein pairs and the top-5 proteins most similar to a
query protein.  These helpers evaluate a SimRank estimator over a candidate
set and return the best-scoring items.

Scoring goes through :meth:`SimRankEngine.similarity_many`, so for the
sampling-based estimator on the vectorized backend the walk bundles are
sampled once per unique endpoint of the candidate set and reused across every
candidate pair — a top-k-for-vertex query over ``m`` candidates costs
``m + 1`` bundle samples instead of ``2m``.  Ranking is deterministic: ties
are broken by candidate order (earlier candidates win), and ``k`` larger than
the candidate set simply returns every candidate, ranked.

With ``use_index=True`` both helpers consult the snapshot's
:mod:`~repro.core.topk_index` — a per-epoch walk-fingerprint index yielding
a provable upper bound per candidate — and only exact-rescore candidates
whose bound could still reach the k-th best score.  The pruned ranking is
bit-identical to the scan (same :func:`rank_top_k` tie-breaking); when the
index cannot serve the request (python backend on a sampled method, budget
exceeded), the helpers silently fall back to the scan.
"""

from __future__ import annotations

import heapq
from itertools import combinations
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.engine import SimRankEngine
from repro.core.topk_index import (
    pruned_top_k_pairs,
    pruned_top_k_vertex,
    snapshot_index,
)
from repro.utils.errors import InvalidParameterError

Vertex = Hashable
ScoredPair = Tuple[Vertex, Vertex, float]
ScoredVertex = Tuple[Vertex, float]

#: Default candidate pairs evaluated per ``similarity_many`` call by
#: :func:`top_k_similar_pairs` (overridable per call via ``chunk_size=``).
#: Bounds the memory of the quadratic default candidate space (only one
#: chunk of pairs and results is live at a time) while keeping each batch
#: large enough to share walk bundles.
PAIR_CHUNK_SIZE = 2048


def rank_top_k(k: int, scores: Sequence[float]) -> List[int]:
    """Indices of the ``k`` best scores, ties broken by candidate order.

    The single tie-breaking rule of every top-k surface (these helpers and
    the service layer), so their rankings can never diverge.
    """
    best = heapq.nlargest(k, enumerate(scores), key=lambda item: (item[1], -item[0]))
    return [index for index, _ in best]


def _chunks(iterable: Iterable, size: int) -> Iterable[list]:
    chunk: list = []
    for item in iterable:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _engine_index(engine: SimRankEngine, method: str, overrides: dict):
    """The engine snapshot's index for one query, or ``None`` to scan."""
    snapshot = engine.snapshot()
    return snapshot, snapshot_index(
        snapshot,
        method,
        num_walks=overrides.get("num_walks"),
        exact_prefix=overrides.get("exact_prefix"),
        backend=overrides.get("backend"),
    )


def top_k_similar_pairs(
    engine: SimRankEngine,
    k: int,
    candidate_pairs: Optional[Iterable[Tuple[Vertex, Vertex]]] = None,
    method: str = "two_phase",
    chunk_size: Optional[int] = None,
    use_index: bool = False,
    **overrides: object,
) -> List[ScoredPair]:
    """The ``k`` most similar vertex pairs.

    ``candidate_pairs`` restricts the search (recommended — the full pair
    space is quadratic); by default all unordered pairs of distinct vertices
    are evaluated, which is only sensible for small graphs.  Explicit
    candidate pairs naming vertices outside the graph are rejected — the
    check runs once per pair up front, not per chunk, and the quadratic
    default space (generated from the graph itself) skips it entirely.

    Candidates stream through :meth:`SimRankEngine.similarity_many` in
    chunks of ``chunk_size`` (default :data:`PAIR_CHUNK_SIZE`), so memory
    stays bounded by ``k`` plus one chunk even on the quadratic default
    space, while sampling-based methods still share walk bundles within
    each chunk (and across chunks when the engine has a ``bundle_store``).

    ``use_index=True`` prunes candidates through the snapshot's top-k index
    before exact re-scoring; the ranking is unchanged.  Note the indexed
    path materializes the candidate list to sort bounds globally.

    Returns a list of ``(u, v, score)`` sorted by decreasing score; ties keep
    candidate order.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    size = PAIR_CHUNK_SIZE if chunk_size is None else int(chunk_size)
    if size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    explicit: Optional[List[Tuple[Vertex, Vertex]]] = None
    if candidate_pairs is not None:
        explicit = [(u, v) for u, v in candidate_pairs]
        # Hoisted validation: one pass over the explicit candidates, before
        # any scoring work, instead of re-checking inside the chunk loop.
        for u, v in explicit:
            if not engine.graph.has_vertex(u) or not engine.graph.has_vertex(v):
                raise InvalidParameterError(
                    f"candidate pair names unknown vertices: {u!r}, {v!r}"
                )
    if use_index:
        pairs = (
            explicit
            if explicit is not None
            else list(combinations(engine.graph.vertices(), 2))
        )
        snapshot, index = _engine_index(engine, method, overrides)
        if index is not None:
            executor = engine.batch_executor(method)
            ranked, _ = pruned_top_k_pairs(executor, index, pairs, k, overrides)
            return [(u, v, result.score) for (u, v), result in ranked]
        candidate_stream: Iterable[Tuple[Vertex, Vertex]] = pairs
    elif explicit is not None:
        candidate_stream = explicit
    else:
        candidate_stream = combinations(engine.graph.vertices(), 2)
    best: List[Tuple[float, int, Vertex, Vertex]] = []
    counter = 0
    for chunk in _chunks(candidate_stream, size):
        results = engine.similarity_many(chunk, method=method, **overrides)
        for (u, v), result in zip(chunk, results):
            # Ties break toward earlier candidates; the unique counter also
            # keeps the heap from ever comparing vertex labels.
            item = (result.score, -counter, u, v)
            if len(best) < k:
                heapq.heappush(best, item)
            elif item > best[0]:
                heapq.heapreplace(best, item)
            counter += 1
    ranked = sorted(best, reverse=True)
    return [(u, v, score) for score, _, u, v in ranked]


def top_k_similar_to(
    engine: SimRankEngine,
    query: Vertex,
    k: int,
    candidates: Optional[Sequence[Vertex]] = None,
    method: str = "two_phase",
    use_index: bool = False,
    **overrides: object,
) -> List[ScoredVertex]:
    """The ``k`` vertices most similar to ``query``.

    ``candidates`` defaults to every other vertex of the graph; the query
    vertex itself is always excluded, and candidates outside the graph are
    rejected up front.  ``use_index=True`` prunes candidates through the
    snapshot's top-k index before exact re-scoring (falling back to the
    scan when the index cannot serve the request); the ranking is
    identical either way.  Returns ``(vertex, score)`` pairs sorted by
    decreasing score; ties keep candidate order.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if not engine.graph.has_vertex(query):
        raise InvalidParameterError(f"query vertex {query!r} is not in the graph")
    if candidates is None:
        candidates = [v for v in engine.graph.vertices() if v != query]
    else:
        kept = []
        for vertex in candidates:
            if vertex == query:
                continue
            if not engine.graph.has_vertex(vertex):
                raise InvalidParameterError(
                    f"candidate vertex {vertex!r} is not in the graph"
                )
            kept.append(vertex)
        candidates = kept
    if use_index:
        snapshot, index = _engine_index(engine, method, overrides)
        if index is not None:
            executor = engine.batch_executor(method)
            ranked, _ = pruned_top_k_vertex(
                executor, index, query, candidates, k, overrides
            )
            return [(vertex, result.score) for vertex, result in ranked]
    results = engine.similarity_many(
        [(query, vertex) for vertex in candidates], method=method, **overrides
    )
    scores = [result.score for result in results]
    return [(candidates[i], scores[i]) for i in rank_top_k(k, scores)]
