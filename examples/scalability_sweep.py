"""Scalability of SR-TS and SR-SP on growing R-MAT graphs (Fig. 12 analogue).

Generates R-MAT uncertain graphs with a fixed vertex count and an increasing
number of edges (probabilities uniform in ``[0, 1]``, as in the paper), and
measures the average single-pair query time of the two-phase algorithm with
and without the bit-vector speed-up.

Run with::

    python examples/scalability_sweep.py
"""

from __future__ import annotations

from repro.experiments.scalability import (
    format_scalability_results,
    run_scalability_experiment,
)


def main() -> None:
    results = run_scalability_experiment(
        num_vertices=600,
        edge_counts=(1500, 3000, 4500, 6000),
        num_pairs=5,
    )
    print(format_scalability_results(results))
    print("\nBoth series should grow roughly linearly with the edge count,")
    print("with SR-SP consistently below SR-TS thanks to the shared sampling.")

    reference = run_scalability_experiment(
        num_vertices=600,
        edge_counts=(6000,),
        num_pairs=5,
        backend="python",
    )
    print("\nScalar reference backend at |E|=6000 (same workload, python engine):")
    print(format_scalability_results(reference))
    print("\nThe vectorized batch walk engine above should be roughly an order")
    print("of magnitude faster on the SR-TS sampling stage.")


if __name__ == "__main__":
    main()
