"""Named analogue datasets mirroring Table II of the paper (at laptop scale)."""

from repro.datasets.registry import (
    DatasetSpec,
    available_datasets,
    dataset_summary_table,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "available_datasets",
    "dataset_summary_table",
    "load_dataset",
]
