"""Tests for the experiment CLI and the runnable example scripts."""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main
from repro.service.runner import run

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestCLI:
    def test_experiment_registry_complete(self):
        assert {
            "datasets",
            "measures",
            "convergence",
            "efficiency",
            "accuracy",
            "param-n",
            "scalability",
            "service",
            "tenancy",
            "epoch",
            "methods",
            "kernels",
            "topk_index",
            "obs",
            "qos",
            "case-ppi",
            "case-er",
        } == set(EXPERIMENTS)

    def test_main_runs_datasets(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "ppi1" in output and "dblp" in output

    def test_main_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_quick_flag_accepted(self, capsys):
        assert main(["datasets", "--quick"]) == 0
        assert "paper |V|" in capsys.readouterr().out


class TestRunnerErrorPaths:
    """Malformed or over-limit requests yield structured errors in stream
    order — with the request ``id`` echoed — and never stop the runner."""

    def _run(self, requests, extra_args=()):
        lines = [
            r if isinstance(r, str) else json.dumps(r) for r in requests
        ]
        stdout = io.StringIO()
        code = run(
            ["--graph", "example", "--seed", "7", "--num-walks", "64",
             *extra_args],
            stdin=io.StringIO("\n".join(lines) + "\n"),
            stdout=stdout,
            stderr=io.StringIO(),
        )
        assert code == 0
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_malformed_json_yields_error_and_stream_continues(self):
        responses = self._run(
            [
                "{not json",
                {"op": "pair", "u": "v1", "v": "v2", "id": "ok-1"},
            ]
        )
        assert len(responses) == 2
        assert "error" in responses[0]
        assert responses[1]["id"] == "ok-1"
        assert "score" in responses[1]

    def test_unknown_op_yields_error_with_request_id(self):
        responses = self._run(
            [
                {"op": "frobnicate", "id": "bad-op"},
                {"op": "pair", "u": "v1", "v": "v2", "id": "ok-2"},
            ]
        )
        assert responses[0]["id"] == "bad-op"
        assert "unknown op" in responses[0]["error"]
        assert responses[1]["id"] == "ok-2" and "score" in responses[1]

    def test_num_walks_above_cap_yields_error(self):
        responses = self._run(
            [
                {"op": "pair", "u": "v1", "v": "v2", "num_walks": 4096,
                 "id": "capped"},
                {"op": "pair", "u": "v1", "v": "v2", "id": "ok-3"},
            ],
            extra_args=("--max-num-walks", "128"),
        )
        assert responses[0]["id"] == "capped"
        assert "max_num_walks" in responses[0]["error"]
        assert responses[1]["id"] == "ok-3" and "score" in responses[1]

    def test_over_quota_request_sheds_with_code_and_retry_hint(self):
        responses = self._run(
            [
                {"op": "pair", "u": "v1", "v": "v2", "id": "q1"},
                {"op": "pair", "u": "v1", "v": "v3", "id": "q2"},
                {"op": "pair", "u": "v2", "v": "v3", "id": "q3"},
            ],
            extra_args=("--max-qps", "1"),
        )
        assert "score" in responses[0]
        shed = [r for r in responses if r.get("code") == "overloaded"]
        assert len(shed) == 2
        for response in shed:
            assert response["retry_after_ms"] >= 0
            assert "overloaded" in response["error"]

    def test_accuracy_answers_carry_interval_fields(self):
        responses = self._run(
            [{"op": "pair", "u": "v1", "v": "v2", "accuracy": 0.1,
              "id": "ci"}]
        )
        (response,) = responses
        assert response["ci_low"] <= response["score"] <= response["ci_high"]
        assert response["walks_used"] >= 2

    def test_accuracy_rejects_exact_method(self):
        responses = self._run(
            [{"op": "pair", "u": "v1", "v": "v2", "method": "baseline",
              "accuracy": 0.1, "id": "bad"}]
        )
        assert responses[0]["id"] == "bad"
        assert "accuracy" in responses[0]["error"]

    def test_plain_responses_carry_no_qos_fields(self):
        """New response fields appear only when their feature triggers."""
        responses = self._run(
            [{"op": "pair", "u": "v1", "v": "v2"}],
            extra_args=("--max-qps", "100", "--degrade-queue-depth", "64"),
        )
        (response,) = responses
        for forbidden in ("code", "retry_after_ms", "degraded", "ci_low",
                          "walks_used"):
            assert forbidden not in response


class TestExamples:
    def test_examples_exist(self):
        expected = {
            "quickstart.py",
            "ppi_similar_proteins.py",
            "entity_resolution.py",
            "measure_comparison.py",
            "scalability_sweep.py",
            "run_all_experiments.py",
            "service_workload.py",
        }
        assert expected <= {path.name for path in EXAMPLES_DIR.glob("*.py")}

    def test_quickstart_runs(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "SimRank similarity" in completed.stdout
        assert "baseline" in completed.stdout

    def test_examples_are_importable_modules(self):
        """Every example must at least compile (syntax / import sanity)."""
        import py_compile

        for path in EXAMPLES_DIR.glob("*.py"):
            py_compile.compile(str(path), doraise=True)
