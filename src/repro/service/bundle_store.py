"""Bounded LRU store for per-endpoint walk bundles.

The engine's original multi-pair batching kept walk bundles in plain dicts
that grew without bound — fine for one batched call, fatal for a long-running
query service that touches millions of endpoints over its lifetime.
:class:`WalkBundleStore` replaces those dicts with an LRU-evicting mapping
under a configurable byte budget, with hit/miss/eviction counters and
whole-store invalidation keyed on the graph's mutation version.

The store itself is agnostic about keys (any hashable works) and values
(anything exposing ``nbytes``, i.e. numpy arrays).  The canonical key for a
walk bundle is :func:`repro.core.batch_walks.bundle_key`, shared by
:class:`~repro.core.batch_walks.WalkBundleCache` and the service layer's
sharded sampler so that bundles prefilled by one are visible to the other.

All operations are thread-safe: the service's batch worker and any number of
submitting threads may touch the store concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from repro.utils.errors import InvalidParameterError

#: Default memory budget: generous for laptop-scale graphs, finite for a
#: long-running service (≈ 256 MiB of walk matrices).
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024


@dataclass
class BundleStoreStats:
    """Counters of one :class:`WalkBundleStore` (monotone over its lifetime).

    The owning store mutates the counters under its own lock and shares that
    lock here (:meth:`bind_lock`), so :meth:`as_dict` reads all four counters
    atomically — a stats poll racing the service's read pool can never see a
    torn update (e.g. a hit counted but its lookup not yet visible).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def bind_lock(self, lock: "threading.RLock") -> None:
        """Share the owning store's lock for atomic snapshot reads."""
        self._lock = lock

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly consistent snapshot of the counters."""
        lock = getattr(self, "_lock", None)
        if lock is None:
            return self._as_dict_unlocked()
        with lock:
            return self._as_dict_unlocked()

    def _as_dict_unlocked(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class WalkBundleStore:
    """LRU-bounded mapping from bundle keys to walk matrices.

    Parameters
    ----------
    budget_bytes:
        Maximum total ``nbytes`` of retained bundles; least-recently-used
        entries are evicted when an insert pushes the store over the budget.
        ``None`` disables eviction (an unbounded store, used for ephemeral
        per-call caches).  A single bundle larger than the whole budget is
        never retained.
    """

    def __init__(self, budget_bytes: Optional[int] = DEFAULT_BUDGET_BYTES) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise InvalidParameterError(
                f"budget_bytes must be >= 1 or None, got {budget_bytes}"
            )
        self._budget = budget_bytes
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._version: Hashable = None
        # One reentrant lock guards entries, byte accounting, the version
        # token, AND the counters (shared with the stats object), so every
        # observable quantity of the store updates atomically.
        self._lock = threading.RLock()
        self._stats = BundleStoreStats()
        self._stats.bind_lock(self._lock)

    # -- introspection --------------------------------------------------------

    @property
    def budget_bytes(self) -> Optional[int]:
        """The configured byte budget (``None`` = unbounded)."""
        return self._budget

    @property
    def current_bytes(self) -> int:
        """Total ``nbytes`` of the retained bundles."""
        return self._bytes

    @property
    def stats(self) -> BundleStoreStats:
        """Live counters of this store."""
        return self._stats

    def __len__(self) -> int:
        return len(self._entries)

    def cache_stats(self) -> Dict[str, int]:
        """The uniform ``{hits, misses, evictions, bytes}`` cache shape.

        The shape shared by every serving cache (walk bundles, top-k index
        artifacts, exact transition distributions) so dashboards can treat
        them as one family; :attr:`stats` keeps the store's richer
        invalidation/hit-rate view.
        """
        with self._lock:
            return {
                "hits": self._stats.hits,
                "misses": self._stats.misses,
                "evictions": self._stats.evictions,
                "bytes": self._bytes,
            }

    def peek(self, key: Hashable) -> bool:
        """Whether ``key`` is present, without touching LRU order or stats."""
        with self._lock:
            return key in self._entries

    # -- the mapping ----------------------------------------------------------

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """The bundle stored under ``key``, or ``None`` (counted as hit/miss)."""
        with self._lock:
            bundle = self._entries.get(key)
            if bundle is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return bundle

    def put(self, key: Hashable, bundle: np.ndarray) -> np.ndarray:
        """Store ``bundle`` under ``key``, evicting LRU entries over budget.

        Returns the bundle, so callers can ``return store.put(key, b)``.
        """
        size = int(bundle.nbytes)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= int(previous.nbytes)
            if self._budget is not None and size > self._budget:
                # An entry that could never fit would immediately evict the
                # whole store and then itself; serve it uncached instead.
                self._stats.evictions += 1
                return bundle
            self._entries[key] = bundle
            self._bytes += size
            while self._budget is not None and self._bytes > self._budget:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= int(evicted.nbytes)
                self._stats.evictions += 1
        return bundle

    # -- version-pinned access (epoch read views) -----------------------------

    @property
    def version_token(self) -> Hashable:
        """The snapshot identity the store is currently bound to."""
        with self._lock:
            return self._version

    def get_versioned(self, key: Hashable, token: Hashable) -> Optional[np.ndarray]:
        """:meth:`get`, but only while the store is still bound to ``token``.

        A reader pinned to an older graph snapshot must never be handed a
        bundle sampled on a newer one (the keys coincide across versions —
        invalidation is whole-store).  When ``token`` no longer matches, the
        lookup is a miss by definition: the caller resamples on its own
        pinned snapshot, which is bit-identical to what the store held for
        that version before it moved on.
        """
        with self._lock:
            if token != self._version:
                self._stats.misses += 1
                return None
            return self.get(key)

    def put_versioned(
        self, key: Hashable, bundle: np.ndarray, token: Hashable
    ) -> np.ndarray:
        """:meth:`put`, dropped silently if the store moved past ``token``.

        Keeps a retiring epoch's late resamples from polluting the store
        after a mutation re-bound it to the next graph version.
        """
        with self._lock:
            if token != self._version:
                return bundle
            return self.put(key, bundle)

    # -- invalidation ---------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            return self._clear_locked()

    def _clear_locked(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self._bytes = 0
        return dropped

    def sync_version(self, token: Hashable) -> bool:
        """Bind the store to a graph snapshot identity; clear it on change.

        ``token`` is typically ``(id(graph), graph.version)``.  Returns
        ``True`` when the token changed and existing entries were dropped —
        i.e. a graph mutation invalidated the cached bundles.
        """
        with self._lock:
            if token == self._version:
                return False
            self._version = token
            if self._clear_locked():
                self._stats.invalidations += 1
                return True
            return False
