"""repro.obs — metrics registry, query-scoped tracing, profiling hooks.

A leaf package: it imports nothing from ``repro.core`` or
``repro.service`` so any layer (core executors, the top-k index, the
service, the runner) can depend on it without cycles.  See
``docs/OBSERVABILITY.md`` for the metric catalog and trace event schema.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS_MS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from .tracing import NULL_SCOPE, Observability, QueryTrace, StageScope, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SCOPE",
    "Observability",
    "QueryTrace",
    "StageScope",
    "Tracer",
]
