"""Tests for the four SimRank computation algorithms and their agreement.

Covers the Baseline algorithm (exactness against the possible-world oracle),
the Sampling algorithm (unbiasedness / convergence, Lemma 4 sample size), the
two-phase algorithm (exact prefix, error ordering) and the SR-SP speed-up
(filter vectors, counting-table propagation, agreement with Sampling).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import (
    baseline_meeting_probabilities,
    baseline_simrank,
    baseline_simrank_all_pairs,
)
from repro.core.sampling import (
    estimate_meeting_probabilities,
    required_sample_size,
    sample_walk,
    sample_walks,
    sampling_simrank,
)
from repro.core.simrank import simrank_from_meeting_probabilities
from repro.core.speedup import (
    FilterVectors,
    meeting_probabilities_from_tables,
    propagate_counting_tables,
    speedup_meeting_probabilities,
    speedup_simrank,
)
from repro.core.transition import exact_transition_matrices_by_enumeration
from repro.core.two_phase import two_phase_meeting_probabilities, two_phase_simrank
from repro.graph.uncertain_graph import UncertainGraph
from repro.utils.errors import InvalidParameterError


class TestBaseline:
    def test_matches_possible_world_oracle(self, paper_graph):
        """s(n)(u, v) computed from the oracle transition matrices must match."""
        order = paper_graph.vertices()
        index = {v: i for i, v in enumerate(order)}
        iterations, decay = 4, 0.6
        oracle = exact_transition_matrices_by_enumeration(paper_graph, iterations, order)
        for u, v in [("v1", "v2"), ("v2", "v4"), ("v3", "v5")]:
            meetings = [
                float(oracle[k][index[u]] @ oracle[k][index[v]]) for k in range(iterations + 1)
            ]
            expected = simrank_from_meeting_probabilities(meetings, decay)
            result = baseline_simrank(paper_graph, u, v, decay=decay, iterations=iterations)
            assert result.score == pytest.approx(expected, abs=1e-10)

    def test_unknown_vertex_rejected(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            baseline_simrank(paper_graph, "v1", "nope")

    def test_all_pairs_matrix_symmetric_and_consistent(self, paper_graph):
        order = paper_graph.vertices()
        matrix = baseline_simrank_all_pairs(paper_graph, decay=0.6, iterations=3, order=order)
        assert np.allclose(matrix, matrix.T)
        index = {v: i for i, v in enumerate(order)}
        single = baseline_simrank(paper_graph, "v1", "v2", decay=0.6, iterations=3).score
        assert matrix[index["v1"], index["v2"]] == pytest.approx(single, abs=1e-10)

    def test_all_pairs_values_in_unit_interval(self, paper_graph):
        matrix = baseline_simrank_all_pairs(paper_graph, iterations=3)
        assert (matrix >= -1e-12).all() and (matrix <= 1.0 + 1e-12).all()

    def test_score_in_unit_interval(self, triangle_graph):
        result = baseline_simrank(triangle_graph, "a", "b", iterations=5)
        assert 0.0 <= result.score <= 1.0

    def test_result_metadata(self, paper_graph):
        result = baseline_simrank(paper_graph, "v1", "v2", iterations=3)
        assert result.method == "baseline"
        assert len(result.meeting_probabilities) == 4


class TestSampling:
    def test_required_sample_size(self):
        assert required_sample_size(0.1, 0.05) == int(np.ceil(3 / 0.01 * np.log(40)))
        with pytest.raises(InvalidParameterError):
            required_sample_size(0.0, 0.5)
        with pytest.raises(InvalidParameterError):
            required_sample_size(0.1, 1.5)

    def test_sample_walk_starts_at_source(self, paper_graph, rng):
        walk = sample_walk(paper_graph, "v1", 5, rng)
        assert walk[0] == "v1"
        assert len(walk) <= 6

    def test_sample_walk_follows_arcs(self, paper_graph, rng):
        for _ in range(50):
            walk = sample_walk(paper_graph, "v2", 4, rng)
            for i in range(len(walk) - 1):
                assert paper_graph.has_arc(walk[i], walk[i + 1])

    def test_sample_walk_certain_graph_never_truncates(self, certain_graph, rng):
        for _ in range(20):
            assert len(sample_walk(certain_graph, "a", 6, rng)) == 7

    def test_sample_walk_dead_end(self, rng):
        graph = UncertainGraph()
        graph.add_arc("a", "b", 1.0)
        walk = sample_walk(graph, "a", 5, rng)
        assert walk == ["a", "b"]

    def test_sample_walk_invalid_inputs(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            sample_walk(paper_graph, "nope", 3)
        with pytest.raises(InvalidParameterError):
            sample_walk(paper_graph, "v1", -1)

    def test_sample_walks_count(self, paper_graph, rng):
        walks = sample_walks(paper_graph, "v1", 3, 25, rng)
        assert len(walks) == 25
        with pytest.raises(InvalidParameterError):
            sample_walks(paper_graph, "v1", 3, -1)

    def test_estimate_meeting_probabilities_identical_walks(self):
        walks = [["u", "a", "b"]] * 10
        meeting = estimate_meeting_probabilities(walks, walks, 2, "u", "u")
        assert meeting == pytest.approx([1.0, 1.0, 1.0])

    def test_estimate_meeting_probabilities_validation(self):
        with pytest.raises(InvalidParameterError):
            estimate_meeting_probabilities([["u"]], [], 1, "u", "v")
        with pytest.raises(InvalidParameterError):
            estimate_meeting_probabilities([], [], 1, "u", "v")

    def test_converges_to_baseline(self, paper_graph):
        exact = baseline_simrank(paper_graph, "v1", "v2", decay=0.6, iterations=4).score
        estimate = sampling_simrank(
            paper_graph, "v1", "v2", decay=0.6, iterations=4, num_walks=6000, rng=7
        ).score
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_reproducible_with_seed(self, paper_graph):
        first = sampling_simrank(paper_graph, "v1", "v2", num_walks=200, rng=3).score
        second = sampling_simrank(paper_graph, "v1", "v2", num_walks=200, rng=3).score
        assert first == second

    def test_invalid_num_walks(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            sampling_simrank(paper_graph, "v1", "v2", num_walks=0)

    def test_unknown_vertex_rejected(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            sampling_simrank(paper_graph, "v1", "nope")


class TestSpeedup:
    def test_filter_vectors_partition_choices(self, paper_graph):
        """For every vertex and sample index at most one out-arc is chosen."""
        filters = FilterVectors(paper_graph, 64, rng=1)
        for vertex in paper_graph.vertices():
            neighbors = paper_graph.out_neighbors(vertex)
            if not neighbors:
                continue
            union_count = 0
            for i in range(64):
                chosen = sum(filters.get(vertex, w).get(i) for w in neighbors)
                assert chosen <= 1
                union_count += chosen
            # With reasonably high arc probabilities most samples choose something.
            assert union_count > 0

    def test_filter_vectors_num_processes(self, paper_graph):
        filters = FilterVectors(paper_graph, 32, rng=2)
        assert filters.num_processes == 32
        assert len(filters) > 0
        with pytest.raises(InvalidParameterError):
            FilterVectors(paper_graph, 0)

    def test_missing_arc_filter_is_zero(self, paper_graph):
        filters = FilterVectors(paper_graph, 16, rng=3)
        assert filters.get("v1", "v5").is_zero()

    def test_propagation_starts_with_all_ones(self, paper_graph):
        filters = FilterVectors(paper_graph, 32, rng=4)
        tables = propagate_counting_tables(paper_graph, "v1", 3, filters)
        assert tables[0]["v1"].count() == 32
        assert len(tables) == 4

    def test_propagation_mass_conserved_or_lost(self, paper_graph):
        """At every step each sample index appears at most once across vertices."""
        filters = FilterVectors(paper_graph, 64, rng=5)
        tables = propagate_counting_tables(paper_graph, "v2", 4, filters)
        for table in tables:
            for i in range(64):
                present = sum(vector.get(i) for vector in table.values())
                assert present <= 1

    def test_propagation_invalid_inputs(self, paper_graph):
        filters = FilterVectors(paper_graph, 8, rng=6)
        with pytest.raises(InvalidParameterError):
            propagate_counting_tables(paper_graph, "nope", 2, filters)
        with pytest.raises(InvalidParameterError):
            propagate_counting_tables(paper_graph, "v1", -1, filters)

    def test_meeting_probabilities_close_to_exact(self, paper_graph):
        exact = baseline_meeting_probabilities(paper_graph, "v1", "v2", 4)
        estimated = speedup_meeting_probabilities(
            paper_graph, "v1", "v2", 4, num_processes=6000, rng=11
        )
        assert estimated[0] == exact[0]
        for exact_value, estimate in zip(exact[1:], estimated[1:]):
            assert estimate == pytest.approx(exact_value, abs=0.03)

    def test_meeting_probabilities_table_mismatch(self):
        with pytest.raises(InvalidParameterError):
            meeting_probabilities_from_tables([{}], [{}, {}], 4, "u", "v")

    def test_speedup_simrank_close_to_baseline(self, paper_graph):
        exact = baseline_simrank(paper_graph, "v1", "v2", iterations=4).score
        estimate = speedup_simrank(
            paper_graph, "v1", "v2", iterations=4, num_processes=6000, rng=13
        ).score
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_shared_filters_mode_runs(self, paper_graph):
        result = speedup_simrank(
            paper_graph, "v1", "v2", iterations=3, num_processes=500, rng=17, shared_filters=True
        )
        assert 0.0 <= result.score <= 1.0
        assert result.details["shared_filters"] is True

    def test_prebuilt_filters_reused(self, paper_graph):
        filters = FilterVectors(paper_graph, 300, rng=19)
        result = speedup_simrank(paper_graph, "v1", "v2", iterations=3, filters=filters, rng=19)
        assert result.details["num_processes"] == 300


class TestTwoPhase:
    def test_exact_prefix_matches_baseline(self, paper_graph):
        exact = baseline_meeting_probabilities(paper_graph, "v1", "v2", 2)
        meeting = two_phase_meeting_probabilities(
            paper_graph, "v1", "v2", iterations=5, exact_prefix=2, num_walks=50, rng=1
        )
        assert meeting[:3] == pytest.approx(exact)
        assert len(meeting) == 6

    def test_full_exact_prefix_equals_baseline(self, paper_graph):
        result = two_phase_simrank(
            paper_graph, "v1", "v2", iterations=4, exact_prefix=4, num_walks=10, rng=2
        )
        baseline = baseline_simrank(paper_graph, "v1", "v2", iterations=4)
        assert result.score == pytest.approx(baseline.score, abs=1e-12)

    def test_invalid_prefix_rejected(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            two_phase_simrank(paper_graph, "v1", "v2", iterations=3, exact_prefix=4)

    def test_close_to_baseline_with_sampling_tail(self, paper_graph):
        exact = baseline_simrank(paper_graph, "v1", "v2", iterations=4).score
        estimate = two_phase_simrank(
            paper_graph, "v1", "v2", iterations=4, exact_prefix=1, num_walks=4000, rng=5
        ).score
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_speedup_tail(self, paper_graph):
        exact = baseline_simrank(paper_graph, "v1", "v2", iterations=4).score
        estimate = two_phase_simrank(
            paper_graph,
            "v1",
            "v2",
            iterations=4,
            exact_prefix=1,
            num_walks=4000,
            rng=7,
            use_speedup=True,
        ).score
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_method_label(self, paper_graph):
        ts = two_phase_simrank(paper_graph, "v1", "v2", num_walks=50, rng=1)
        sp = two_phase_simrank(paper_graph, "v1", "v2", num_walks=50, rng=1, use_speedup=True)
        assert ts.method == "two_phase"
        assert sp.method == "speedup"

    def test_unknown_vertex_rejected(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            two_phase_simrank(paper_graph, "v1", "nope")

    def test_two_phase_error_smaller_than_sampling_on_average(self, paper_graph):
        """Averaged over repetitions, SR-TS (l=2) should beat plain Sampling —
        the headline accuracy claim of the paper."""
        exact = baseline_simrank(paper_graph, "v2", "v4", iterations=4).score
        rng = np.random.default_rng(23)
        sampling_errors, two_phase_errors = [], []
        for _ in range(12):
            sampling_errors.append(
                abs(
                    sampling_simrank(
                        paper_graph, "v2", "v4", iterations=4, num_walks=300, rng=rng
                    ).score
                    - exact
                )
            )
            two_phase_errors.append(
                abs(
                    two_phase_simrank(
                        paper_graph,
                        "v2",
                        "v4",
                        iterations=4,
                        exact_prefix=2,
                        num_walks=300,
                        rng=rng,
                    ).score
                    - exact
                )
            )
        assert np.mean(two_phase_errors) < np.mean(sampling_errors)


class TestTwoPhaseEdgeCases:
    def test_zero_exact_prefix_is_pure_sampling(self, paper_graph):
        """l = 0 must work: only m(0) is exact, everything else is sampled."""
        result = two_phase_simrank(
            paper_graph, "v1", "v2", iterations=3, exact_prefix=0, num_walks=200, rng=3
        )
        assert 0.0 <= result.score <= 1.0
        assert result.meeting_probabilities[0] == 0.0

    def test_prebuilt_filters_for_both_endpoints(self, paper_graph):
        """Passing two offline filter sets keeps the endpoint bundles independent."""
        filters_u = FilterVectors(paper_graph, 400, rng=21)
        filters_v = FilterVectors(paper_graph, 400, rng=22)
        result = two_phase_simrank(
            paper_graph, "v1", "v2", iterations=3, exact_prefix=1,
            num_walks=400, rng=23, use_speedup=True,
            filters=filters_u, filters_v=filters_v,
        )
        assert 0.0 <= result.score <= 1.0

    def test_mismatched_filter_widths_rejected(self, paper_graph):
        from repro.core.speedup import speedup_meeting_probabilities

        filters_u = FilterVectors(paper_graph, 64, rng=1)
        filters_v = FilterVectors(paper_graph, 32, rng=2)
        with pytest.raises(InvalidParameterError):
            speedup_meeting_probabilities(
                paper_graph, "v1", "v2", 2, filters=filters_u, filters_v=filters_v
            )

    def test_baseline_meeting_probabilities_zero_steps(self, paper_graph):
        from repro.core.baseline import baseline_meeting_probabilities

        assert baseline_meeting_probabilities(paper_graph, "v1", "v1", 0) == [1.0]
        assert baseline_meeting_probabilities(paper_graph, "v1", "v2", 0) == [0.0]
        with pytest.raises(InvalidParameterError):
            baseline_meeting_probabilities(paper_graph, "v1", "v2", -1)
