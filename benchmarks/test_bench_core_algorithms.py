"""Micro-benchmarks of the four SimRank algorithms on one dataset.

These are the per-query building blocks of Fig. 9: the wall-clock time of a
single similarity query with Baseline, Sampling, SR-TS and SR-SP on the
Net-like analogue dataset.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.baseline import baseline_simrank
from repro.core.batch_walks import (
    KEYED_CHUNK_MIN_ROWS,
    keyed_chunk_rows,
    sample_walk_matrix_keyed,
)
from repro.core.engine import SimRankEngine
from repro.core.sampling import sampling_simrank
from repro.core.speedup import FilterVectors
from repro.core.two_phase import two_phase_simrank
from repro.core.walks import AlphaCache
from repro.datasets.registry import load_dataset
from repro.graph.csr import CSRGraph
from repro.graph.generators import random_vertex_pairs, related_vertex_pairs, rmat_uncertain

from bench_config import BENCH_NUM_WALKS, QUICK, SWEEP_GRAPH_SIZE

ITERATIONS = 4
NUM_WALKS = 300

#: The paper's N, used by the backend-comparison benchmarks (reduced when
#: REPRO_BENCH_QUICK=1, see benchmarks/conftest.py).
BACKEND_NUM_WALKS = BENCH_NUM_WALKS


@pytest.fixture(scope="module")
def net_graph():
    return load_dataset("net")


@pytest.fixture(scope="module")
def query_pair(net_graph):
    return related_vertex_pairs(net_graph, 1, rng=5)[0]


@pytest.fixture(scope="module")
def shared_cache(net_graph):
    return AlphaCache(net_graph)


@pytest.fixture(scope="module")
def shared_filters(net_graph):
    return FilterVectors(net_graph, NUM_WALKS, rng=5)


@pytest.mark.paper_artifact("fig9-baseline")
def test_bench_baseline_single_query(benchmark, net_graph, query_pair, shared_cache):
    u, v = query_pair
    result = benchmark(
        baseline_simrank, net_graph, u, v, iterations=ITERATIONS, alpha_cache=shared_cache
    )
    assert 0.0 <= result.score <= 1.0


@pytest.mark.paper_artifact("fig9-sampling")
def test_bench_sampling_single_query(benchmark, net_graph, query_pair):
    u, v = query_pair
    result = benchmark(
        sampling_simrank, net_graph, u, v, iterations=ITERATIONS, num_walks=NUM_WALKS, rng=7
    )
    assert 0.0 <= result.score <= 1.0


@pytest.mark.paper_artifact("fig9-sr-ts")
def test_bench_two_phase_single_query(benchmark, net_graph, query_pair, shared_cache):
    u, v = query_pair
    result = benchmark(
        two_phase_simrank,
        net_graph,
        u,
        v,
        iterations=ITERATIONS,
        exact_prefix=1,
        num_walks=NUM_WALKS,
        rng=7,
        alpha_cache=shared_cache,
    )
    assert 0.0 <= result.score <= 1.0


@pytest.mark.paper_artifact("fig9-sr-sp")
def test_bench_speedup_single_query(benchmark, net_graph, query_pair, shared_cache, shared_filters):
    u, v = query_pair
    result = benchmark(
        two_phase_simrank,
        net_graph,
        u,
        v,
        iterations=ITERATIONS,
        exact_prefix=1,
        num_walks=NUM_WALKS,
        rng=7,
        use_speedup=True,
        filters=shared_filters,
        alpha_cache=shared_cache,
    )
    assert 0.0 <= result.score <= 1.0


@pytest.mark.paper_artifact("fig9-offline-filters")
def test_bench_filter_vector_construction(benchmark, net_graph):
    """The offline step of SR-SP: building the per-arc filter vectors."""
    filters = benchmark(FilterVectors, net_graph, NUM_WALKS, 11)
    assert len(filters) > 0


# -- backend comparison on the scalability-sweep generator graphs -------------


@pytest.fixture(scope="module")
def sweep_graph():
    """An R-MAT graph from the Fig. 12 scalability sweep (smallest in quick mode)."""
    graph = rmat_uncertain(*SWEEP_GRAPH_SIZE, rng=43)
    CSRGraph.from_uncertain(graph)  # warm the snapshot cache for all backends
    return graph


@pytest.fixture(scope="module")
def sweep_pair(sweep_graph):
    return random_vertex_pairs(sweep_graph, 1, rng=5)[0]


@pytest.mark.paper_artifact("backend-sampling-python")
def test_bench_sampling_backend_python(benchmark, sweep_graph, sweep_pair):
    """The scalar reference sampler at the paper's N=1000."""
    u, v = sweep_pair
    result = benchmark(
        sampling_simrank,
        sweep_graph, u, v,
        iterations=ITERATIONS, num_walks=BACKEND_NUM_WALKS, rng=7, backend="python",
    )
    assert 0.0 <= result.score <= 1.0


@pytest.mark.paper_artifact("backend-sampling-vectorized")
def test_bench_sampling_backend_vectorized(benchmark, sweep_graph, sweep_pair):
    """The batch walk engine at the paper's N=1000."""
    u, v = sweep_pair
    result = benchmark(
        sampling_simrank,
        sweep_graph, u, v,
        iterations=ITERATIONS, num_walks=BACKEND_NUM_WALKS, rng=7, backend="vectorized",
    )
    assert 0.0 <= result.score <= 1.0


@pytest.mark.paper_artifact("backend-speedup-ratio")
def test_bench_sampling_backend_speedup_ratio(benchmark, sweep_graph, sweep_pair):
    """Measured python/vectorized ratio on the sampling hot path.

    The vectorized batch walk engine should beat the scalar sampler by an
    order of magnitude at N=1000; the exact ratio is machine-dependent, so the
    assertion keeps head-room while the measured value lands in the benchmark
    report (``extra_info``).
    """
    u, v = sweep_pair

    def measure(backend: str, repeats: int) -> float:
        start = time.perf_counter()
        for _ in range(repeats):
            sampling_simrank(
                sweep_graph, u, v,
                iterations=ITERATIONS, num_walks=BACKEND_NUM_WALKS, rng=7, backend=backend,
            )
        return (time.perf_counter() - start) / repeats

    def compare():
        return measure("python", 2) / measure("vectorized", 10)

    ratio = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["speedup_ratio"] = ratio
    # The measured ratio is the report (typically 10-30x); the assertion is
    # only a sanity floor so noisy or throttled machines don't fail the suite.
    assert ratio > 1.0


@pytest.mark.paper_artifact("keyed-chunk-heuristic")
def test_bench_keyed_chunk_heuristic_no_regression(benchmark):
    """Satellite pin: the shape-aware chunk heuristic never loses to the
    old fixed 2048-row chunking.

    Sparse short-walk sweeps used to serialize on tiny chunks — each chunk
    pays the Python-level step-loop overhead, and with few steps and few
    candidate arcs that overhead dominates the vectorized work.
    :func:`keyed_chunk_rows` budgets by candidate arcs (with a short-walk
    bonus) instead, so this workload runs in larger chunks, while dense
    graphs keep the measured 2048-row optimum.  The assertion is a
    no-regression floor (with noise head-room); the measured ratio lands in
    ``extra_info``.
    """
    # The smallest Fig. 12 sweep graph: sparse (average degree ~2.5), the
    # shape where the fixed chunk size serialized hardest.
    graph = rmat_uncertain(600, 1500, rng=43)
    csr = CSRGraph.from_uncertain(graph)
    length = 2  # short walks: the heuristic picks larger-than-minimum chunks
    degree = csr.num_arcs / csr.num_vertices
    assert keyed_chunk_rows(length, degree) > KEYED_CHUNK_MIN_ROWS
    rng = np.random.default_rng(11)
    count = 20_000 if QUICK else 60_000
    sources = rng.integers(0, csr.num_vertices, size=count).astype(np.int64)
    keys = rng.integers(0, 2**64, size=count, dtype=np.uint64)

    def time_best(chunk_rows) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            sample_walk_matrix_keyed(csr, sources, length, keys, chunk_rows=chunk_rows)
            best = min(best, time.perf_counter() - start)
        return best

    def compare() -> float:
        fixed = time_best(KEYED_CHUNK_MIN_ROWS)  # the old fixed chunking
        heuristic = time_best(None)
        return fixed / heuristic

    ratio = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["chunk_heuristic_speedup"] = ratio
    # >= 1.0 modulo noise: the heuristic must never regress the keyed sweep.
    assert ratio >= 0.8


@pytest.mark.paper_artifact("backend-batched-many")
def test_bench_engine_similarity_many_batched(benchmark, sweep_graph):
    """Batched multi-pair sampling: walk bundles shared across pairs."""
    pairs = random_vertex_pairs(sweep_graph, 12, rng=9)
    engine = SimRankEngine(
        sweep_graph, iterations=ITERATIONS, num_walks=BACKEND_NUM_WALKS, seed=13
    )
    results = benchmark.pedantic(
        engine.similarity_many, args=(pairs,), kwargs={"method": "sampling"},
        rounds=1, iterations=1,
    )
    assert len(results) == len(pairs)
    assert all(r.details.get("shared_bundles") for r in results)
