"""Error and bias statistics used across the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np


def relative_error(estimate: float, reference: float, eps: float = 1e-12) -> float:
    """Relative error ``|estimate - reference| / reference``.

    The paper evaluates accuracy as the relative error against the value
    produced by the Baseline algorithm.  When the reference is (numerically)
    zero, the absolute error is returned instead so the statistic stays
    finite.
    """
    if reference > eps:
        return abs(estimate - reference) / reference
    return abs(estimate - reference)


def relative_errors(
    estimates: Iterable[float], references: Iterable[float], eps: float = 1e-12
) -> np.ndarray:
    """Vectorised :func:`relative_error` over paired sequences."""
    est = np.asarray(list(estimates), dtype=float)
    ref = np.asarray(list(references), dtype=float)
    if est.shape != ref.shape:
        raise ValueError(f"shape mismatch: {est.shape} vs {ref.shape}")
    out = np.empty_like(est)
    safe = ref > eps
    out[safe] = np.abs(est[safe] - ref[safe]) / ref[safe]
    out[~safe] = np.abs(est[~safe] - ref[~safe])
    return out


def mean_and_max(values: Sequence[float]) -> Tuple[float, float]:
    """Return ``(mean, max)`` of a non-empty sequence."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("mean_and_max requires at least one value")
    return float(arr.mean()), float(arr.max())


@dataclass(frozen=True)
class BiasSummary:
    """Summary of the absolute differences between two similarity series.

    Mirrors Table III of the paper (average / maximum / minimum bias between
    SimRank-I and another similarity measure over the sampled vertex pairs).
    """

    average: float
    maximum: float
    minimum: float

    def as_row(self) -> Tuple[float, float, float]:
        """Return ``(average, maximum, minimum)`` for table printing."""
        return (self.average, self.maximum, self.minimum)


def summarize_bias(reference: Sequence[float], other: Sequence[float]) -> BiasSummary:
    """Bias statistics of ``other`` against ``reference`` (Table III)."""
    ref = np.asarray(reference, dtype=float)
    oth = np.asarray(other, dtype=float)
    if ref.shape != oth.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {oth.shape}")
    if ref.size == 0:
        raise ValueError("summarize_bias requires at least one pair")
    diff = np.abs(ref - oth)
    return BiasSummary(
        average=float(diff.mean()),
        maximum=float(diff.max()),
        minimum=float(diff.min()),
    )


def normalize_to_unit_interval(values: Sequence[float]) -> np.ndarray:
    """Min-max normalise a sequence to ``[0, 1]``.

    The paper normalises all similarity series to ``[0, 1]`` before comparing
    measures (Fig. 7).  A constant series normalises to all zeros.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr
    low, high = arr.min(), arr.max()
    if high - low <= 0:
        return np.zeros_like(arr)
    return (arr - low) / (high - low)
