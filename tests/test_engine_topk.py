"""Tests for the SimRankEngine front end and the top-k query helpers."""

from __future__ import annotations

import pytest

from repro.core.baseline import baseline_simrank
from repro.core.engine import METHODS, SimRankEngine, compute_simrank
from repro.core.topk import top_k_similar_pairs, top_k_similar_to
from repro.utils.errors import InvalidParameterError


class TestEngine:
    def test_all_methods_produce_scores(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=400, seed=3)
        for method in METHODS:
            result = engine.similarity("v1", "v2", method=method)
            assert 0.0 <= result.score <= 1.0

    def test_unknown_method_rejected(self, paper_graph):
        engine = SimRankEngine(paper_graph)
        with pytest.raises(InvalidParameterError):
            engine.similarity("v1", "v2", method="magic")

    def test_invalid_construction(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            SimRankEngine(paper_graph, decay=1.5)
        with pytest.raises(InvalidParameterError):
            SimRankEngine(paper_graph, iterations=0)
        with pytest.raises(InvalidParameterError):
            SimRankEngine(paper_graph, num_walks=0)
        with pytest.raises(InvalidParameterError):
            SimRankEngine(paper_graph, exact_prefix=9, iterations=3)

    def test_baseline_matches_direct_call(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=4)
        direct = baseline_simrank(paper_graph, "v1", "v2", iterations=4).score
        assert engine.similarity("v1", "v2", method="baseline").score == pytest.approx(direct)

    def test_filters_are_cached_and_rebuildable(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=100, seed=5)
        first = engine.filters
        assert engine.filters is first
        rebuilt = engine.rebuild_filters()
        assert rebuilt is not first
        assert engine.filters is rebuilt

    def test_filters_track_num_walks(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=64, seed=5)
        assert engine.filters.num_processes == 64
        engine.num_walks = 128
        assert engine.filters.num_processes == 128

    def test_filters_invalidated_by_graph_mutation(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=64, seed=5)
        before = engine.filters
        before_v = engine.filters_v
        paper_graph.add_arc("v5", "v1", 0.4)
        assert engine.filters is not before
        assert engine.filters_v is not before_v
        assert engine.filters.get("v5", "v1").width == 64

    def test_filters_invalidated_by_graph_reassignment(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=64, seed=5)
        before = engine.filters
        engine.graph = paper_graph.copy()
        after = engine.filters
        assert after is not before
        assert after.graph is engine.graph

    def test_backend_validation(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            SimRankEngine(paper_graph, backend="magic")

    def test_backends_statistically_consistent(self, paper_graph):
        """Acceptance criterion: python and vectorized sampling estimates agree."""
        exact = baseline_simrank(paper_graph, "v1", "v2", iterations=4).score
        for backend in ("python", "vectorized"):
            engine = SimRankEngine(
                paper_graph, iterations=4, num_walks=5000, seed=2, backend=backend
            )
            result = engine.similarity("v1", "v2", method="sampling")
            assert result.details["backend"] == backend
            assert result.score == pytest.approx(exact, abs=0.025)

    def test_backend_forwarded_to_two_phase(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=100, seed=9, backend="python")
        result = engine.similarity("v1", "v2", method="two_phase")
        assert result.details["backend"] == "python"
        override = engine.similarity("v1", "v2", method="two_phase", backend="vectorized")
        assert override.details["backend"] == "vectorized"

    def test_similarity_many(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=100, seed=7)
        results = engine.similarity_many([("v1", "v2"), ("v2", "v3")], method="sampling")
        assert len(results) == 2
        assert {(r.u, r.v) for r in results} == {("v1", "v2"), ("v2", "v3")}

    def test_similarity_many_shares_walk_bundles(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=4, num_walks=6000, seed=7)
        pairs = [("v1", "v2"), ("v1", "v3"), ("v2", "v3")]
        results = engine.similarity_many(pairs, method="sampling")
        assert all(r.details.get("shared_bundles") for r in results)
        for result in results:
            exact = baseline_simrank(paper_graph, result.u, result.v, iterations=4).score
            assert result.score == pytest.approx(exact, abs=0.025)

    def test_similarity_many_python_backend_falls_back(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=50, seed=7, backend="python")
        results = engine.similarity_many([("v1", "v2"), ("v2", "v3")], method="sampling")
        assert all("shared_bundles" not in r.details for r in results)

    def test_similarity_many_rejects_unknown_vertices(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=50, seed=7)
        with pytest.raises(InvalidParameterError):
            engine.similarity_many([("v1", "nope"), ("v1", "v2")], method="sampling")

    def test_similarity_matrix(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        matrix = engine.similarity_matrix(order=paper_graph.vertices())
        assert matrix.shape == (5, 5)

    def test_method_overrides_forwarded(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=100, seed=9)
        result = engine.similarity("v1", "v2", method="two_phase", exact_prefix=2)
        assert result.details["exact_prefix"] == 2

    def test_compute_simrank_convenience(self, paper_graph):
        result = compute_simrank(paper_graph, "v1", "v2", method="sampling", num_walks=200, seed=1)
        assert result.method == "sampling"
        assert 0.0 <= result.score <= 1.0


class TestTopK:
    def test_pairs_match_exhaustive_ranking(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        top = top_k_similar_pairs(engine, k=3, method="baseline")
        assert len(top) == 3
        # Compare with a brute-force ranking over all pairs.
        from itertools import combinations

        scores = {
            (u, v): engine.similarity(u, v, method="baseline").score
            for u, v in combinations(paper_graph.vertices(), 2)
        }
        best = sorted(scores.items(), key=lambda item: item[1], reverse=True)[:3]
        assert [score for _, _, score in top] == pytest.approx([s for _, s in best])

    def test_pairs_sorted_descending(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        top = top_k_similar_pairs(engine, k=5, method="baseline")
        scores = [score for _, _, score in top]
        assert scores == sorted(scores, reverse=True)

    def test_pairs_candidate_restriction(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        candidates = [("v1", "v2"), ("v3", "v4")]
        top = top_k_similar_pairs(engine, k=2, candidate_pairs=candidates, method="baseline")
        assert {(u, v) for u, v, _ in top} <= set(candidates)

    def test_pairs_invalid_k(self, paper_graph):
        engine = SimRankEngine(paper_graph)
        with pytest.raises(InvalidParameterError):
            top_k_similar_pairs(engine, k=0)

    def test_similar_to_matches_exhaustive_ranking(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        top = top_k_similar_to(engine, "v1", k=2, method="baseline")
        scores = {
            v: engine.similarity("v1", v, method="baseline").score
            for v in paper_graph.vertices()
            if v != "v1"
        }
        best = sorted(scores.items(), key=lambda item: item[1], reverse=True)[:2]
        assert [score for _, score in top] == pytest.approx([s for _, s in best])

    def test_similar_to_excludes_query(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        top = top_k_similar_to(engine, "v1", k=4, method="baseline")
        assert all(vertex != "v1" for vertex, _ in top)

    def test_similar_to_candidates(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        top = top_k_similar_to(engine, "v1", k=2, candidates=["v2", "v3", "v1"], method="baseline")
        assert {vertex for vertex, _ in top} <= {"v2", "v3"}

    def test_similar_to_invalid_inputs(self, paper_graph):
        engine = SimRankEngine(paper_graph)
        with pytest.raises(InvalidParameterError):
            top_k_similar_to(engine, "v1", k=0)
        with pytest.raises(InvalidParameterError):
            top_k_similar_to(engine, "nope", k=2)


class TestTopKDeterminism:
    def test_ties_broken_by_candidate_order(self, paper_graph):
        """Exactly tied scores keep the candidate submission order."""
        engine = SimRankEngine(paper_graph, iterations=3)
        # The same pair listed twice ties with itself exactly; the earlier
        # occurrence must rank first, and repeated runs must agree.
        candidates = [("v3", "v4"), ("v1", "v2"), ("v3", "v4")]
        top = top_k_similar_pairs(engine, k=3, candidate_pairs=candidates, method="baseline")
        tied = [(u, v) for u, v, _ in top if (u, v) == ("v3", "v4")]
        assert len(tied) == 2
        assert top == top_k_similar_pairs(
            engine, k=3, candidate_pairs=candidates, method="baseline"
        )

    def test_similar_to_ties_keep_candidate_order(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        top = top_k_similar_to(
            engine, "v1", k=3, candidates=["v3", "v2", "v3"], method="baseline"
        )
        scores = {v: s for v, s in top}
        # Duplicated candidate produces an exact tie; order must be stable.
        positions = [i for i, (v, _) in enumerate(top) if v == "v3"]
        assert len(positions) == 2
        assert positions == sorted(positions)
        assert scores["v3"] == pytest.approx(
            engine.similarity("v1", "v3", method="baseline").score
        )

    def test_k_larger_than_candidate_set(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        pairs = [("v1", "v2"), ("v2", "v3")]
        top = top_k_similar_pairs(engine, k=10, candidate_pairs=pairs, method="baseline")
        assert len(top) == 2
        vertices = top_k_similar_to(engine, "v1", k=99, method="baseline")
        assert len(vertices) == 4  # every other vertex, ranked

    def test_candidate_pairs_with_unknown_vertices_rejected(self, paper_graph):
        engine = SimRankEngine(paper_graph, iterations=3)
        with pytest.raises(InvalidParameterError):
            top_k_similar_pairs(
                engine, k=2, candidate_pairs=[("v1", "v2"), ("v1", "ghost")]
            )
        with pytest.raises(InvalidParameterError):
            top_k_similar_to(engine, "v1", k=2, candidates=["v2", "ghost"])

    def test_sampling_top_k_shares_walk_bundles(self, paper_graph):
        """Satellite: top-k routes through similarity_many, so the candidate
        set costs one bundle per unique endpoint, not two per pair."""
        from repro.service import WalkBundleStore

        store = WalkBundleStore()
        engine = SimRankEngine(paper_graph, num_walks=100, seed=7, bundle_store=store)
        top = top_k_similar_to(engine, "v1", k=3, method="sampling")
        assert len(top) == 3
        # 4 candidates + the query vertex = 5 unique endpoints = 5 bundles.
        assert len(store) == 5


class TestTopKIndexThroughHelpers:
    """The use_index= path of the helpers on the paper graph (the deep
    bound/prune properties live in tests/test_topk_index.py)."""

    @pytest.mark.parametrize("method", METHODS)
    def test_use_index_matches_scan_every_method(self, paper_graph, method):
        engine = SimRankEngine(paper_graph, num_walks=200, seed=11)
        scan = top_k_similar_to(engine, "v1", k=3, method=method)
        pruned = top_k_similar_to(engine, "v1", k=3, method=method, use_index=True)
        assert pruned == scan

    def test_use_index_matches_scan_for_pairs(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=200, seed=11)
        scan = top_k_similar_pairs(engine, k=3, method="sampling")
        pruned = top_k_similar_pairs(engine, k=3, method="sampling", use_index=True)
        assert pruned == scan

    def test_use_index_ties_keep_candidate_order(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=150, seed=4)
        candidates = ["v3", "v2", "v3", "v4"]  # duplicate = exact tie
        scan = top_k_similar_to(
            engine, "v1", k=4, candidates=candidates, method="sampling"
        )
        pruned = top_k_similar_to(
            engine, "v1", k=4, candidates=candidates, method="sampling", use_index=True
        )
        assert pruned == scan

    def test_use_index_keeps_hoisted_validation(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=100, seed=4)
        with pytest.raises(InvalidParameterError):
            top_k_similar_to(engine, "v1", k=2, candidates=["ghost"], use_index=True)
        with pytest.raises(InvalidParameterError):
            top_k_similar_pairs(
                engine, k=2, candidate_pairs=[("v1", "ghost")], use_index=True
            )

    def test_index_artifacts_cached_on_engine(self, paper_graph):
        engine = SimRankEngine(paper_graph, num_walks=100, seed=4)
        top_k_similar_to(engine, "v1", k=2, method="sampling", use_index=True)
        store = engine.caches.topk_indexes.stats()
        assert store["entries"] > 0
        top_k_similar_to(engine, "v2", k=2, method="sampling", use_index=True)
        assert engine.caches.topk_indexes.stats()["hits"] > store["hits"]
