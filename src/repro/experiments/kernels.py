"""Kernel-backend sweep: single-thread speedup and thread scaling.

ROADMAP item 2 asks for a GIL-free keyed sampling kernel; this experiment
measures what the backend layer of :mod:`repro.core.kernels` delivers on
this machine.  One deterministic keyed sweep — the Fig. 12 sweep-graph
shape, every row a ``(source, world key)`` pair — runs through every
available backend at two walk lengths:

* ``reference`` — the original chunked ``_sample_walks_core`` loop, the
  bit-identity anchor and the baseline of every ratio.
* ``numpy`` — the fused kernel (scratch reuse, pre-shifted integer
  thresholds, flatnonzero+bincount selection, dense fast path).
* ``numba`` — the nogil ``prange`` kernel, when numba is installed; it is
  additionally timed at 1 and 4 threads for the thread-scaling ratio.

Every backend's walk matrix is checked bit-identical to the reference
before its time is reported — a backend that drifted would invalidate the
whole deterministic serving stack, so the experiment refuses to report a
speedup for it.  Timing is best-of-N (min filters scheduler noise, the
benchmark suite's protocol).

Run it from the CLI with ``python -m repro.experiments kernels [--quick]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.batch_walks import sample_walk_matrix_keyed
from repro.core.kernels import available_kernels, numba_available, resolve_kernel
from repro.experiments.report import format_table
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_uncertain


@dataclass
class KernelRun:
    """One backend's cost on the shared keyed sweep at one walk length."""

    kernel: str
    length: int
    best_wall_ms: float
    speedup: float  #: reference best time / this backend's best time
    bit_identical: bool


@dataclass
class KernelsResult:
    """All backend runs plus the optional numba thread-scaling ratio."""

    num_vertices: int
    num_edges: int
    rows: int
    runs: List[KernelRun]
    numba_threads_1_ms: Optional[float] = None
    numba_threads_4_ms: Optional[float] = None

    @property
    def thread_scaling(self) -> Optional[float]:
        if not self.numba_threads_1_ms or not self.numba_threads_4_ms:
            return None
        return self.numba_threads_1_ms / self.numba_threads_4_ms


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_kernels_experiment(
    num_vertices: int = 600,
    num_edges: int = 6000,
    rows: int = 60_000,
    lengths: tuple = (4, 11),
    repeats: int = 5,
) -> KernelsResult:
    """Time every available kernel backend on one deterministic keyed sweep."""
    csr = CSRGraph.from_uncertain(rmat_uncertain(num_vertices, num_edges, rng=43))
    generator = np.random.default_rng(11)
    sources = generator.integers(0, csr.num_vertices, size=rows).astype(np.int64)
    keys = generator.integers(0, 2**64, size=rows, dtype=np.uint64)

    runs: List[KernelRun] = []
    for length in lengths:
        expected = sample_walk_matrix_keyed(
            csr, sources, length, keys, kernel="reference"
        )
        baseline_ms: Optional[float] = None
        for kernel in available_kernels():
            identical = np.array_equal(
                sample_walk_matrix_keyed(csr, sources, length, keys, kernel=kernel),
                expected,
            )
            wall_ms = 1e3 * _best_of(
                repeats,
                lambda: sample_walk_matrix_keyed(
                    csr, sources, length, keys, kernel=kernel
                ),
            )
            if kernel == "reference":
                baseline_ms = wall_ms
            runs.append(
                KernelRun(
                    kernel=kernel,
                    length=length,
                    best_wall_ms=wall_ms,
                    speedup=baseline_ms / wall_ms if identical else float("nan"),
                    bit_identical=identical,
                )
            )

    result = KernelsResult(
        num_vertices=num_vertices, num_edges=num_edges, rows=rows, runs=runs
    )
    if numba_available():
        import numba

        kernel = resolve_kernel("numba")
        length = lengths[-1]
        kernel.sample(csr, sources, length, keys)  # warm the JIT cache
        default_threads = numba.config.NUMBA_NUM_THREADS
        try:
            numba.set_num_threads(1)
            result.numba_threads_1_ms = 1e3 * _best_of(
                repeats, lambda: kernel.sample(csr, sources, length, keys)
            )
            numba.set_num_threads(min(4, default_threads))
            result.numba_threads_4_ms = 1e3 * _best_of(
                repeats, lambda: kernel.sample(csr, sources, length, keys)
            )
        finally:
            numba.set_num_threads(default_threads)
    return result


def format_kernels_results(result: KernelsResult) -> str:
    """Render the sweep as the experiment harness's aligned plain-text table."""
    headers = ("kernel", "length", "best ms", "speedup", "bit-identical")
    table_rows = [
        (run.kernel, run.length, run.best_wall_ms, run.speedup, run.bit_identical)
        for run in result.runs
    ]
    lines = [
        f"keyed sweep: {result.rows} walks on rmat"
        f"({result.num_vertices}, {result.num_edges})",
        format_table(headers, table_rows, precision=2),
    ]
    if result.thread_scaling is not None:
        lines.append(
            f"numba thread scaling (1 -> 4 threads): "
            f"{result.numba_threads_1_ms:.1f} ms -> "
            f"{result.numba_threads_4_ms:.1f} ms "
            f"({result.thread_scaling:.2f}x)"
        )
    else:
        lines.append("numba not installed: thread-scaling sweep skipped")
    return "\n".join(lines)
