"""Tests for the multi-tenant registry and mutation ingest (repro.service.tenancy)."""

from __future__ import annotations

import io
import json

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.uncertain_graph import UncertainGraph, example_graph
from repro.service import (
    GraphRegistry,
    MutationLog,
    PairQuery,
    SimilarityService,
    TenantConfig,
    TopKVertexQuery,
)
from repro.service.runner import run
from repro.utils.errors import InvalidParameterError


def _tenant_graph(offset: int) -> UncertainGraph:
    """Small deterministic graphs that differ per tenant."""
    graph = example_graph()
    graph.add_arc("v5", "v1", 0.2 + 0.1 * offset)
    return graph


class TestMutationLog:
    def test_fluent_construction_and_iteration(self):
        log = (
            MutationLog()
            .add_edge("a", "b", 0.5)
            .update_probability("a", "b", 0.9)
            .remove_edge("a", "b")
        )
        assert len(log) == 3
        assert [m.op for m in log] == ["add_edge", "update_probability", "remove_edge"]

    def test_records_roundtrip(self):
        log = MutationLog().add_edge("a", "b", 0.5).remove_edge("a", "b")
        assert MutationLog.from_records(log.as_records()).as_records() == log.as_records()

    def test_invalid_probability_rejected(self):
        with pytest.raises(InvalidParameterError):
            MutationLog().add_edge("a", "b", 0.0)
        with pytest.raises(InvalidParameterError):
            MutationLog().update_probability("a", "b", 1.5)
        with pytest.raises(InvalidParameterError):
            MutationLog.from_records([{"op": "add_edge", "u": "a", "v": "b"}])

    def test_unknown_op_rejected(self):
        with pytest.raises(InvalidParameterError):
            MutationLog.from_records([{"op": "explode", "u": "a", "v": "b"}])

    def test_missing_fields_rejected(self):
        with pytest.raises(InvalidParameterError):
            MutationLog.from_records([{"op": "remove_edge", "u": "a"}])

    def test_apply_returns_dirty_sources(self, paper_graph):
        log = (
            MutationLog()
            .add_edge("v1", "v6", 0.4)     # dirties v1, creates v6
            .remove_edge("v3", "v4")       # dirties v3
            .update_probability("v4", "v2", 0.3)
        )
        dirty = log.apply_to(paper_graph)
        assert dirty == {"v1", "v6", "v3", "v4"}
        assert paper_graph.has_arc("v1", "v6")
        assert not paper_graph.has_arc("v3", "v4")
        assert paper_graph.probability("v4", "v2") == pytest.approx(0.3)

    def test_validation_is_atomic(self, paper_graph):
        """A log with one bad op must leave the graph completely untouched."""
        version = paper_graph.version
        log = MutationLog().add_edge("v1", "v6", 0.4).remove_edge("v1", "nope")
        with pytest.raises(InvalidParameterError):
            log.apply_to(paper_graph)
        assert paper_graph.version == version
        assert not paper_graph.has_vertex("v6")

    def test_add_existing_edge_rejected(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            MutationLog().add_edge("v1", "v3", 0.5).apply_to(paper_graph)

    def test_update_missing_edge_rejected(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            MutationLog().update_probability("v1", "v4", 0.5).apply_to(paper_graph)

    def test_intra_log_effects_respected(self, paper_graph):
        """Removing an arc the same log added (and re-adding a removed one)
        must validate against the log's own earlier ops."""
        log = (
            MutationLog()
            .add_edge("v1", "v6", 0.4)
            .remove_edge("v1", "v6")
            .remove_edge("v1", "v3")
            .add_edge("v1", "v3", 0.9)
        )
        log.apply_to(paper_graph)
        assert not paper_graph.has_arc("v1", "v6")
        assert paper_graph.probability("v1", "v3") == pytest.approx(0.9)


class TestTenantConfig:
    def test_replace_overrides_fields(self):
        config = TenantConfig().replace(num_walks=50, seed=3)
        assert config.num_walks == 50
        assert config.seed == 3

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(InvalidParameterError):
            TenantConfig().replace(walk_count=50)


class TestGraphRegistry:
    def test_create_get_drop_lifecycle(self):
        with GraphRegistry() as registry:
            registry.create("a", example_graph(), num_walks=50)
            registry.create("b", example_graph(), num_walks=60)
            assert registry.names() == ["a", "b"]
            assert "a" in registry and len(registry) == 2
            assert registry.get("a").config.num_walks == 50
            registry.drop("a")
            assert "a" not in registry
            with pytest.raises(InvalidParameterError):
                registry.get("a")

    def test_duplicate_name_rejected(self):
        with GraphRegistry() as registry:
            registry.create("a", example_graph())
            with pytest.raises(InvalidParameterError):
                registry.create("a", example_graph())

    def test_invalid_name_rejected(self):
        with GraphRegistry() as registry:
            with pytest.raises(InvalidParameterError):
                registry.create("", example_graph())

    def test_drop_unknown_rejected(self):
        with GraphRegistry() as registry:
            with pytest.raises(InvalidParameterError):
                registry.drop("ghost")

    def test_apply_reports_and_bumps_version(self):
        with GraphRegistry(verify_mutations=True) as registry:
            tenant = registry.create("a", example_graph(), num_walks=50, seed=1)
            version = tenant.graph.version
            report = registry.apply(
                "a", MutationLog().add_edge("v5", "v1", 0.5).remove_edge("v1", "v3")
            )
            assert report.ops == 2
            assert report.incremental
            assert report.version == tenant.graph.version > version
            assert report.dirty_rows == 2
            assert tenant.mutations_applied == 1

    def test_stats_per_tenant(self):
        with GraphRegistry() as registry:
            registry.create("a", example_graph(), num_walks=50)
            stats = registry.stats()
            assert stats["a"]["graph"]["num_vertices"] == 5
            assert stats["a"]["store"]["hits"] == 0


class TestMultiTenantService:
    def test_acceptance_three_tenants_bit_identical_to_standalone(self):
        """Registry hosting 3 tenants under interleaved queries and
        mutations answers bit-identically to per-tenant standalone services."""
        seeds = {name: 11 + offset for offset, name in enumerate(("a", "b", "c"))}
        logs = {
            "a": MutationLog().add_edge("v5", "v2", 0.7),
            "b": MutationLog().remove_edge("v3", "v4"),
            "c": MutationLog().update_probability("v2", "v1", 0.35),
        }

        registry = GraphRegistry(verify_mutations=True)
        for offset, (name, seed) in enumerate(seeds.items()):
            registry.create(
                name, _tenant_graph(offset), num_walks=200, iterations=4, seed=seed
            )
        shared: dict = {}
        with SimilarityService(registry=registry, default_graph="a") as service:
            for name in seeds:  # interleave: query → mutate → query, per tenant
                shared[name, "before"] = service.pair("v1", "v2", graph=name)
                service.mutate(logs[name], graph=name)
            for name in seeds:
                shared[name, "after"] = service.pair("v1", "v2", graph=name)
                shared[name, "topk"] = service.submit(
                    TopKVertexQuery("v1", 3, graph=name)
                ).result()
        registry.close()

        for offset, (name, seed) in enumerate(seeds.items()):
            graph = _tenant_graph(offset)
            with SimilarityService(
                graph, num_walks=200, iterations=4, seed=seed
            ) as standalone:
                before = standalone.pair("v1", "v2")
                standalone.mutate(logs[name])
                after = standalone.pair("v1", "v2")
                topk = standalone.top_k_for_vertex("v1", 3)
            assert shared[name, "before"].score == before.score
            assert shared[name, "after"].score == after.score
            assert shared[name, "topk"] == topk

    def test_mutation_invalidates_only_that_tenant(self):
        """Satellite: after mutate, the mutated tenant's bundles and CSR
        snapshot are dropped while every other tenant's caches survive."""
        registry = GraphRegistry()
        registry.create("a", _tenant_graph(0), num_walks=100, seed=1)
        registry.create("b", _tenant_graph(1), num_walks=100, seed=2)
        with SimilarityService(registry=registry, default_graph="a") as service:
            service.pair("v1", "v2", graph="a")
            service.pair("v1", "v2", graph="b")
            tenant_a, tenant_b = registry.get("a"), registry.get("b")
            csr_a = CSRGraph.from_uncertain(tenant_a.graph)
            csr_b = CSRGraph.from_uncertain(tenant_b.graph)
            entries_b = len(tenant_b.store)
            assert len(tenant_a.store) > 0 and entries_b > 0

            service.mutate(MutationLog().add_edge("v5", "v2", 0.6), graph="a")

            assert len(tenant_a.store) == 0                      # invalidated
            assert tenant_a.store.stats.invalidations == 1
            assert CSRGraph.from_uncertain(tenant_a.graph) is not csr_a
            assert len(tenant_b.store) == entries_b              # untouched
            assert tenant_b.store.stats.invalidations == 0
            assert CSRGraph.from_uncertain(tenant_b.graph) is csr_b

            misses_b = tenant_b.store.stats.misses
            service.pair("v1", "v2", graph="b")
            assert tenant_b.store.stats.misses == misses_b       # still warm
        registry.close()

    def test_post_mutation_matches_freshly_built_graph(self):
        """Satellite: answers after mutate equal a service built directly on
        the post-mutation graph state."""
        graph = _tenant_graph(0)
        log = (
            MutationLog()
            .add_edge("v1", "v6", 0.4)
            .remove_edge("v3", "v4")
            .update_probability("v4", "v2", 0.5)
        )
        with SimilarityService(
            graph, num_walks=200, iterations=4, seed=9, verify_mutations=True
        ) as service:
            service.pair("v1", "v2")  # warm the store pre-mutation
            service.mutate(log)
            mutated_score = service.pair("v1", "v2").score
            mutated_topk = service.top_k_for_vertex("v1", 3)

        fresh = UncertainGraph(vertices=graph.vertices(), arcs=graph.arcs())
        with SimilarityService(
            fresh, num_walks=200, iterations=4, seed=9
        ) as service:
            assert service.pair("v1", "v2").score == mutated_score
            assert service.top_k_for_vertex("v1", 3) == mutated_topk

    def test_queries_serialized_with_mutations(self):
        """A query submitted after a mutation sees the mutated graph even
        when both are queued before the worker runs either."""
        with SimilarityService(
            example_graph(), num_walks=100, iterations=4, seed=5,
            batch_wait_seconds=0.05,
        ) as service:
            before = service.submit(PairQuery("v1", "v2"))
            mutation = service.submit_mutations(
                MutationLog().add_edge("v5", "v1", 0.9)
            )
            after = service.submit(PairQuery("v1", "v2"))
            assert mutation.result(timeout=30).ops == 1
            assert before.result(timeout=30).score != after.result(timeout=30).score

    def test_unknown_tenant_fails_query_cleanly(self):
        with SimilarityService(example_graph(), num_walks=50, seed=1) as service:
            with pytest.raises(InvalidParameterError):
                service.pair("v1", "v2", graph="ghost")
            # the worker survives and keeps answering
            assert 0.0 <= service.pair("v1", "v2").score <= 1.0

    def test_mutation_error_does_not_kill_worker(self):
        with SimilarityService(example_graph(), num_walks=50, seed=1) as service:
            with pytest.raises(InvalidParameterError):
                service.mutate(MutationLog().remove_edge("v1", "nope"))
            assert 0.0 <= service.pair("v1", "v2").score <= 1.0

    def test_create_and_drop_through_service(self):
        with SimilarityService(example_graph(), num_walks=50, seed=1) as service:
            service.create_graph("extra", example_graph(), num_walks=60)
            assert service.graphs() == ["default", "extra"]
            assert 0.0 <= service.pair("v1", "v2", graph="extra").score <= 1.0
            service.drop_graph("extra")
            assert service.graphs() == ["default"]

    def test_requires_exactly_one_of_graph_and_registry(self):
        with pytest.raises(InvalidParameterError):
            SimilarityService()
        with GraphRegistry() as registry:
            with pytest.raises(InvalidParameterError):
                SimilarityService(example_graph(), registry=registry)

    def test_empty_mutation_log_reports_nothing_invalidated(self):
        with SimilarityService(example_graph(), num_walks=100, seed=1) as service:
            service.pair("v1", "v2")  # warm the store
            entries = len(service.store)
            report = service.mutate(MutationLog())
            assert report.ops == 0
            assert report.invalidated_bundles == 0
            assert len(service.store) == entries  # bundles really survived

    def test_verify_flag_does_not_leak_into_external_registry(self):
        with GraphRegistry() as registry:
            registry.create("a", example_graph(), num_walks=50, seed=1)
            with SimilarityService(
                registry=registry, default_graph="a", verify_mutations=True
            ) as service:
                service.mutate(MutationLog().add_edge("v5", "v1", 0.5), graph="a")
            assert registry.verify_mutations is False  # owner keeps control

    def test_external_registry_not_closed_by_service(self):
        with GraphRegistry() as registry:
            registry.create("a", example_graph(), num_walks=50, seed=1)
            with SimilarityService(registry=registry, default_graph="a") as service:
                service.pair("v1", "v2")
            assert registry.names() == ["a"]  # survives service shutdown

    def test_per_tenant_stats_in_service_stats(self):
        """Satellite: per-tenant hit/miss counters through service_stats."""
        registry = GraphRegistry()
        registry.create("a", _tenant_graph(0), num_walks=100, seed=1)
        registry.create("b", _tenant_graph(1), num_walks=100, seed=2)
        with SimilarityService(registry=registry, default_graph="a") as service:
            service.pair("v1", "v2", graph="a")
            service.pair("v1", "v2", graph="a")
            service.pair("v1", "v2", graph="b")
            stats = service.service_stats()
        tenants = stats["tenants"]
        assert tenants["a"]["store"]["hits"] >= 2
        assert tenants["a"]["store"]["misses"] == 2
        assert tenants["b"]["store"]["misses"] == 2
        assert tenants["b"]["store"]["hits"] == 0
        assert stats["store"] == tenants["a"]["store"]  # default-tenant mirror
        registry.close()


class TestRunnerTenancyOps:
    def _run(self, lines, *extra_args):
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout, stderr = io.StringIO(), io.StringIO()
        code = run(
            ["--graph", "example", "--seed", "7", "--num-walks", "200", *extra_args],
            stdin=stdin,
            stdout=stdout,
            stderr=stderr,
        )
        return code, stdout.getvalue(), stderr.getvalue()

    def test_create_query_mutate_drop_stream(self):
        code, out, _ = self._run(
            [
                '{"op": "create_graph", "graph": "g2", "id": 1, '
                '"edges": [["a", "b", 0.9], ["b", "c", 0.8], ["c", "a", 0.7]], '
                '"params": {"num_walks": 100, "seed": 3, "iterations": 4}}',
                '{"op": "pair", "u": "a", "v": "b", "graph": "g2"}',
                '{"op": "mutate", "graph": "g2", "ops": ['
                '{"op": "add_edge", "u": "a", "v": "c", "probability": 0.4}]}',
                '{"op": "pair", "u": "a", "v": "b", "graph": "g2"}',
                '{"op": "pair", "u": "v1", "v": "v2"}',
                '{"op": "drop_graph", "graph": "g2"}',
                '{"op": "pair", "u": "a", "v": "b", "graph": "g2"}',
            ]
        )
        assert code == 0
        responses = [json.loads(line) for line in out.splitlines()]
        assert len(responses) == 7
        assert responses[0] == {
            "op": "create_graph", "id": 1, "graph": "g2",
            "num_vertices": 3, "num_arcs": 3,
        }
        assert 0.0 <= responses[1]["score"] <= 1.0
        assert responses[2]["ops"] == 1
        assert responses[2]["incremental"] is True
        assert responses[2]["num_arcs"] == 4
        assert 0.0 <= responses[3]["score"] <= 1.0
        assert 0.0 <= responses[4]["score"] <= 1.0     # default tenant untouched
        assert responses[5]["dropped"] is True
        assert "unknown graph" in responses[6]["error"]

    def test_mutation_changes_scores_and_orders_with_queries(self):
        lines = [
            '{"op": "pair", "u": "v1", "v": "v2", "id": "pre"}',
            '{"op": "mutate", "graph": "default", "ops": ['
            '{"op": "add_edge", "u": "v5", "v": "v1", "probability": 0.9}]}',
            '{"op": "pair", "u": "v1", "v": "v2", "id": "post"}',
        ]
        code, out, _ = self._run(lines, "--verify-mutations")
        assert code == 0
        responses = [json.loads(line) for line in out.splitlines()]
        assert responses[0]["id"] == "pre" and responses[2]["id"] == "post"
        assert responses[0]["score"] != responses[2]["score"]

    def test_invalid_mutation_reports_error_and_continues(self):
        code, out, _ = self._run(
            [
                '{"op": "mutate", "graph": "default", "ops": ['
                '{"op": "remove_edge", "u": "v1", "v": "nope"}]}',
                '{"op": "pair", "u": "v1", "v": "v2"}',
            ]
        )
        assert code == 0
        responses = [json.loads(line) for line in out.splitlines()]
        assert "does not exist" in responses[0]["error"]
        assert 0.0 <= responses[1]["score"] <= 1.0

    def test_stats_request_reports_tenants(self):
        code, out, _ = self._run(
            [
                '{"op": "pair", "u": "v1", "v": "v2"}',
                '{"op": "stats", "id": 9}',
            ]
        )
        assert code == 0
        responses = [json.loads(line) for line in out.splitlines()]
        stats = responses[1]["stats"]
        assert responses[1]["id"] == 9
        assert stats["queries"] == 1
        assert stats["tenants"]["default"]["store"]["misses"] == 2
        assert stats["tenants"]["default"]["mutations"] == 0

    def test_deterministic_across_runs_with_mutations(self):
        lines = [
            '{"op": "pair", "u": "v1", "v": "v2"}',
            '{"op": "mutate", "graph": "default", "ops": ['
            '{"op": "update_probability", "u": "v1", "v": "v3", "probability": 0.4}]}',
            '{"op": "pair", "u": "v1", "v": "v2"}',
        ]
        _, first, _ = self._run(lines)
        _, second, _ = self._run(lines)
        assert first == second
